//! The pluggable translation-engine layer: one enum-dispatched type that
//! lets the *full* simulation pipeline (TLBs, faults, MimicOS, caches,
//! DRAM, reporting) run any of the paper's translation architectures —
//! the conventional TLB + page-table path, Midgard's intermediate address
//! space, RMM's range translation, and Utopia's restrictive segments.
//!
//! # Composition: the framework owns the `Mmu`, the engine borrows it
//!
//! The framework (`virtuoso::System`) owns the [`Mmu`] — the TLB
//! hierarchy, page-walk caches and per-address-space page tables every
//! design composes with — and a [`TranslationEngine`] value holding only
//! the *design-specific* state (VLB frontends, range TLBs, RestSeg
//! walkers). Every operation takes `&mut Mmu`, so:
//!
//! * [`TranslationEngine::PageTable`] is a unit variant: its state *is*
//!   the `Mmu`, and the hot path compiles to the very same direct
//!   `Mmu::translate` call on a `System` field that the PR 3
//!   zero-allocation loop was tuned around (one predicted branch on the
//!   engine tag is the entire dispatch cost — measured, not assumed);
//! * the alternative engines are boxed, keeping the enum two words, and
//!   their code is kept out of the hot instruction loop entirely via
//!   `#[cold]`/`#[inline(never)]` on the dispatch's alternative arm.
//!
//! Dispatch is a `match` on an enum rather than a `dyn` vtable for the
//! same reason: the common arm must inline.
//!
//! # Adding an engine
//!
//! A new virtual-memory design lands as one file: implement the five
//! operations ([`translate`](TranslationEngine::translate),
//! [`handle_fault_install`](TranslationEngine::handle_fault_install),
//! [`context_switch`](TranslationEngine::context_switch),
//! [`flush_asid`](TranslationEngine::flush_asid),
//! [`report`](TranslationEngine::report)) on a struct (composing with the
//! borrowed `Mmu` via [`Mmu::probe_tlb`], [`Mmu::walk_after_miss`] and
//! [`Mmu::external_translation`]), add an [`EngineConfig`] and a
//! [`TranslationEngine`] variant, and every figure harness, multiprogram
//! mix and sweep in the repository can run it end-to-end through
//! `System::run` / `System::run_multiprogram`.

use crate::midgard::{MidgardConfig, MidgardMmu};
use crate::mmu::{Mmu, RemovedTranslation, TranslationResult};
use crate::pt::WalkOutcome;
use crate::rmm::{RmmConfig, RmmMmu};
use crate::utopia_mmu::{UtopiaMmu, UtopiaMmuConfig};
use mimic_os::kernel::RangeMapping;
use mimic_os::Mapping;
use serde::{Deserialize, Serialize};
use vm_types::{Asid, Counter, PageSize, PhysAddr, VirtAddr};

/// Physical region where the Midgard frontend keeps its per-address-space
/// VMA trees (distinct from the page-table metadata region).
const MIDGARD_FRONTEND_BASE: u64 = 0xE0_0000_0000;
/// Physical region where the per-address-space RMM range tables live.
const RMM_TABLE_BASE: u64 = 0xC0_0000_0000;
/// Physical region where the Utopia RestSeg tag arrays live.
const UTOPIA_TAG_BASE: u64 = 0xD0_0000_0000;
/// Stride between per-ASID metadata regions of the engine structures.
const ENGINE_ASID_STRIDE: u64 = 0x1_0000_0000;

/// Which translation engine the simulated machine runs.
///
/// The default, [`EngineConfig::PageTable`], is the conventional
/// TLB-plus-page-table path; the page-table *design* (radix or one of the
/// hash tables) still comes from [`crate::MmuConfig::page_table`]. The
/// other variants carry the configuration of their design-specific
/// hardware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum EngineConfig {
    /// TLB hierarchy backed by a hardware-walked page table.
    #[default]
    PageTable,
    /// Midgard (Gupta et al., ISCA 2021): VMA-granular frontend VLBs plus
    /// a lazily-walked Midgard→physical backend.
    Midgard(MidgardConfig),
    /// Redundant Memory Mappings (Karakostas et al., ISCA 2015): a range
    /// TLB and range table in front of the conventional page-table path.
    Rmm(RmmConfig),
    /// Utopia (Kanellopoulos et al., MICRO 2023): RestSeg set-index
    /// translation with TAR/SF caches, falling back to the page table.
    Utopia(UtopiaMmuConfig),
}

impl EngineConfig {
    /// Short label used in tables, reports and the `simspeed` harness.
    pub fn label(&self) -> &'static str {
        match self {
            EngineConfig::PageTable => "page-table",
            EngineConfig::Midgard(_) => "midgard",
            EngineConfig::Rmm(_) => "rmm",
            EngineConfig::Utopia(_) => "utopia",
        }
    }
}

/// Engine-specific metadata accompanying a fault-time mapping install,
/// produced by MimicOS and routed through the framework's fault path.
#[derive(Debug, Clone, Copy, Default)]
pub struct InstallInfo {
    /// The kernel placed the page in a Utopia RestSeg (so the RestSeg
    /// walkers — not the page table — resolve it from now on).
    pub restseg_placed: bool,
}

/// Result of shooting one page translation down across the framework's
/// [`Mmu`] *and* the engine's design-specific state. Produced by
/// [`TranslationEngine::invalidate`], consumed by the framework, which
/// charges the metadata-update accesses as kernel memory traffic and rolls
/// the drop counts into its shootdown statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvalidationOutcome {
    /// Translation-metadata update accesses (page-table leaf removal).
    pub accesses: Vec<PhysAddr>,
    /// TLB entries dropped across the hierarchy.
    pub tlb_entries_dropped: usize,
    /// Page-walk-cache entries dropped (radix only).
    pub pwc_entries_dropped: usize,
    /// Engine-resident translations dropped or rewritten (RMM ranges,
    /// Utopia RestSeg residency + TAR/SF lines).
    pub engine_entries_dropped: usize,
}

impl InvalidationOutcome {
    fn from_removed(removed: RemovedTranslation, engine_entries_dropped: usize) -> Self {
        InvalidationOutcome {
            accesses: removed.accesses,
            tlb_entries_dropped: removed.tlb_entries_dropped,
            pwc_entries_dropped: removed.pwc_entries_dropped,
            engine_entries_dropped,
        }
    }
}

/// The per-engine statistics section of a simulation report. `None` on the
/// conventional page-table engine (whose statistics are the MMU/TLB
/// numbers the report already carries).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineReport {
    /// Midgard frontend/backend breakdown (Fig. 17).
    Midgard {
        /// Translations attempted by the frontend.
        translations: u64,
        /// L1 VLB hits.
        l1_vlb_hits: u64,
        /// L2 VLB hits.
        l2_vlb_hits: u64,
        /// In-memory VMA-tree walks (both VLBs missed).
        frontend_walks: u64,
        /// Fraction of fixed translation latency spent in the frontend.
        frontend_fraction: f64,
        /// L2 VLB hit ratio (the Fig. 18 explanation for BC).
        l2_vlb_hit_ratio: f64,
        /// Backend (Midgard→physical) page walks performed.
        backend_walks: u64,
    },
    /// RMM range-translation coverage (Fig. 21).
    Rmm {
        /// Translations resolved through a range.
        range_translations: u64,
        /// Translations that fell through to the page table.
        fallback_translations: u64,
        /// Range-TLB hits.
        rlb_hits: u64,
        /// Range-TLB misses (range-table walks).
        rlb_misses: u64,
        /// Ranges registered across all address spaces.
        ranges: u64,
        /// Fraction of TLB-missing translations a range covered.
        range_coverage: f64,
    },
    /// Utopia RestSeg-side behaviour (Fig. 19).
    Utopia {
        /// RestSeg-side lookups performed (every TLB miss pays one).
        lookups: u64,
        /// Lookups resolved by RestSeg residency (no page walk).
        restseg_hits: u64,
        /// Lookups that fell through to the page-table walker.
        flexseg_walks: u64,
        /// Tag-array (RSW) fetches sent through the memory hierarchy.
        rsw_fetches: u64,
        /// TAR-cache hit ratio.
        tar_hit_ratio: f64,
    },
}

/// The translation engine of the simulated machine: enum dispatch over the
/// designs the paper evaluates, holding only the design-specific state —
/// the framework owns the [`Mmu`] and lends it to every call. See the
/// [module documentation](self).
#[derive(Debug)]
pub enum TranslationEngine {
    /// The conventional TLB + page-table path: no state beyond the
    /// framework's [`Mmu`]; every call forwards to it verbatim.
    PageTable,
    /// Midgard intermediate-address-space translation (boxed so the enum
    /// stays two words and `System` keeps its hot-field layout).
    Midgard(Box<MidgardEngine>),
    /// RMM range translation with page-table fallback.
    Rmm(Box<RmmEngine>),
    /// Utopia RestSeg translation with page-table fallback.
    Utopia(Box<UtopiaEngine>),
}

impl TranslationEngine {
    /// Builds the engine selected by `engine`.
    pub fn new(engine: EngineConfig) -> Self {
        match engine {
            EngineConfig::PageTable => TranslationEngine::PageTable,
            EngineConfig::Midgard(cfg) => {
                TranslationEngine::Midgard(Box::new(MidgardEngine::new(cfg)))
            }
            EngineConfig::Rmm(cfg) => TranslationEngine::Rmm(Box::new(RmmEngine::new(cfg))),
            EngineConfig::Utopia(cfg) => {
                TranslationEngine::Utopia(Box::new(UtopiaEngine::new(cfg)))
            }
        }
    }

    /// Short label of the engine in use.
    pub fn label(&self) -> &'static str {
        match self {
            TranslationEngine::PageTable => "page-table",
            TranslationEngine::Midgard(_) => "midgard",
            TranslationEngine::Rmm(_) => "rmm",
            TranslationEngine::Utopia(_) => "utopia",
        }
    }

    /// Translates `va` in address space `asid`, composing with the
    /// framework's `mmu`. The returned [`TranslationResult`] carries the
    /// fixed (lookup-structure) latency plus the in-memory accesses the
    /// framework must replay through the cache hierarchy — page-table
    /// walks, VMA-tree and backend walks, range-table walks, or RestSeg
    /// tag fetches, depending on the engine.
    ///
    /// Always inlined: after inlining, the page-table arm is the direct
    /// `Mmu::translate` call on the caller's field behind one predicted
    /// branch, and `#[cold]` keeps the alternative engines' code out of
    /// the hot loop (fat LTO otherwise inlined all four arms into
    /// `System::memory_access`, costing measurable sustained MIPS).
    #[inline(always)]
    pub fn translate(&mut self, mmu: &mut Mmu, asid: Asid, va: VirtAddr) -> TranslationResult {
        match self {
            TranslationEngine::PageTable => mmu.translate(asid, va),
            other => other.translate_alternative(mmu, asid, va),
        }
    }

    /// The non-page-table translation paths (see
    /// [`TranslationEngine::translate`]).
    #[cold]
    #[inline(never)]
    fn translate_alternative(
        &mut self,
        mmu: &mut Mmu,
        asid: Asid,
        va: VirtAddr,
    ) -> TranslationResult {
        match self {
            TranslationEngine::PageTable => mmu.translate(asid, va),
            TranslationEngine::Midgard(e) => e.translate(mmu, asid, va),
            TranslationEngine::Rmm(e) => e.translate(mmu, asid, va),
            TranslationEngine::Utopia(e) => e.translate(mmu, asid, va),
        }
    }

    /// Installs a mapping established by the MimicOS fault handler,
    /// together with its engine-specific metadata. Returns the metadata
    /// update accesses to charge as kernel memory traffic.
    #[inline(always)]
    pub fn handle_fault_install(
        &mut self,
        mmu: &mut Mmu,
        asid: Asid,
        mapping: &Mapping,
        info: InstallInfo,
    ) -> Vec<PhysAddr> {
        match self {
            TranslationEngine::PageTable => mmu.install_mapping(asid, mapping),
            other => other.install_alternative(mmu, asid, mapping, info),
        }
    }

    /// The non-page-table install paths (split out of the inlined fault
    /// path for the same code-size reason as
    /// [`TranslationEngine::translate_alternative`]).
    #[cold]
    #[inline(never)]
    fn install_alternative(
        &mut self,
        mmu: &mut Mmu,
        asid: Asid,
        mapping: &Mapping,
        info: InstallInfo,
    ) -> Vec<PhysAddr> {
        match self {
            TranslationEngine::PageTable => mmu.install_mapping(asid, mapping),
            TranslationEngine::Midgard(e) => e.install(mmu, asid, mapping),
            TranslationEngine::Rmm(_) => mmu.install_mapping(asid, mapping),
            TranslationEngine::Utopia(e) => e.install(mmu, asid, mapping, info),
        }
    }

    /// Tells the engine about a newly mapped virtual region (the `mmap`
    /// path). Midgard registers the VMA with its frontend; the other
    /// engines have no VMA-granular state.
    pub fn note_vma(&mut self, asid: Asid, start: VirtAddr, bytes: u64) {
        if let TranslationEngine::Midgard(e) = self {
            e.note_vma(asid, start, bytes);
        }
    }

    /// Tells the engine about the contiguous ranges the kernel has eagerly
    /// allocated for an address space (RMM's eager paging). Idempotent —
    /// already-registered ranges are updated in place.
    pub fn note_ranges(&mut self, asid: Asid, ranges: &[RangeMapping]) {
        if let TranslationEngine::Rmm(e) = self {
            let rmm = e.rmm_for(asid);
            for range in ranges {
                rmm.register_range(*range);
            }
        }
    }

    /// Shoots down the translation of one page: removes it from the
    /// `Mmu`'s page table, TLBs and page-walk caches *and* from the
    /// engine's design-specific state, so no stale copy of a reclaimed
    /// mapping can ever be served again. This is the per-page counterpart
    /// of [`TranslationEngine::flush_asid`] — the hook the framework calls
    /// for every victim in a kernel [`mimic_os::InvalidationBatch`].
    ///
    /// Per engine, on top of the `Mmu` removal:
    /// * `PageTable` — nothing further (the `Mmu` *is* its state);
    /// * `Midgard` — the removal is keyed by the page's *Midgard* address
    ///   (the backend knows nothing of raw virtual addresses);
    /// * `Rmm` — the covering range is split around the page in the range
    ///   table and dropped from the range TLB;
    /// * `Utopia` — the page leaves the resident set and the TAR/SF
    ///   caches drop the set's tag lines (the tag array changed).
    pub fn invalidate(
        &mut self,
        mmu: &mut Mmu,
        asid: Asid,
        va: VirtAddr,
        size: PageSize,
    ) -> InvalidationOutcome {
        match self {
            TranslationEngine::PageTable => {
                InvalidationOutcome::from_removed(mmu.remove_mapping(asid, va), 0)
            }
            TranslationEngine::Midgard(e) => e.invalidate(mmu, asid, va),
            TranslationEngine::Rmm(e) => {
                let engine_entries = e
                    .rmms
                    .iter_mut()
                    .find(|(a, _)| *a == asid)
                    .map_or(0, |(_, rmm)| rmm.invalidate_page(va, size.bytes()));
                InvalidationOutcome::from_removed(mmu.remove_mapping(asid, va), engine_entries)
            }
            TranslationEngine::Utopia(e) => {
                let engine_entries = e.remove_resident(asid, va);
                InvalidationOutcome::from_removed(mmu.remove_mapping(asid, va), engine_entries)
            }
        }
    }

    /// The engine-resident page translations (Utopia's RestSeg residency),
    /// as `(asid, mapping)` pairs. Empty for every other engine. For
    /// invariant checking and debugging.
    pub fn resident_mappings(&self) -> Vec<(Asid, Mapping)> {
        match self {
            TranslationEngine::Utopia(e) => e
                .resident
                .iter()
                .map(|((asid, _), m)| (Asid::new(*asid), *m))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// The engine-resident translation ranges (RMM's range tables), as
    /// `(asid, range)` pairs. Empty for every other engine. For invariant
    /// checking and debugging.
    pub fn resident_ranges(&self) -> Vec<(Asid, RangeMapping)> {
        match self {
            TranslationEngine::Rmm(e) => e
                .rmms
                .iter()
                .flat_map(|(asid, rmm)| rmm.ranges().map(move |r| (*asid, *r)))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Notifies the engine of a context switch into `to`, applying the
    /// configured TLB policy. Returns the number of entries dropped.
    pub fn context_switch(&mut self, mmu: &mut Mmu, to: Asid) -> usize {
        mmu.context_switch(to)
    }

    /// Flushes the translation state of one address space (teardown):
    /// the `Mmu`'s TLB entries *and* the engine's per-ASID state (Midgard
    /// frontend, RMM ranges, Utopia RestSeg residency), so a later reuse
    /// of the ASID can never inherit the torn-down space's translations.
    /// Returns the number of TLB entries dropped.
    pub fn flush_asid(&mut self, mmu: &mut Mmu, asid: Asid) -> usize {
        match self {
            TranslationEngine::PageTable => {}
            TranslationEngine::Midgard(e) => e.frontends.retain(|(a, _)| *a != asid),
            TranslationEngine::Rmm(e) => e.rmms.retain(|(a, _)| *a != asid),
            TranslationEngine::Utopia(e) => e.flush_asid_resident(asid),
        }
        mmu.flush_asid(asid)
    }

    /// Whether the software L0 translation cache in front of the `Mmu`'s
    /// TLB hierarchy may serve this engine. True for every engine whose
    /// steady-state path begins with an unmodified `probe_tlb`/`translate`
    /// on the raw virtual address; false for Midgard, whose backend TLB is
    /// keyed by *Midgard* addresses (an L0 hit would bypass the VLB
    /// frontend and mis-attribute its statistics).
    pub fn uses_l0(&self) -> bool {
        !matches!(self, TranslationEngine::Midgard(_))
    }

    /// The engine's design-specific statistics, or `None` for the
    /// conventional page-table engine. For the Midgard engine the `mmu`
    /// is its Midgard-space backend, whose walk count completes the
    /// frontend/backend breakdown.
    pub fn report(&self, mmu: &Mmu) -> Option<EngineReport> {
        match self {
            TranslationEngine::PageTable => None,
            TranslationEngine::Midgard(e) => Some(e.report(mmu)),
            TranslationEngine::Rmm(e) => Some(e.report()),
            TranslationEngine::Utopia(e) => Some(e.report(mmu)),
        }
    }
}

// ---------------------------------------------------------------------------
// Midgard
// ---------------------------------------------------------------------------

/// Midgard end to end: a per-address-space VLB frontend (virtual → Midgard
/// at VMA granularity) in front of the framework's [`Mmu`], which the
/// engine repurposes as its *backend*, keyed by Midgard addresses. The
/// backend's TLB models cached Midgard→physical translations (the paper
/// defers these walks to cache-miss time; here a backend-TLB hit plays
/// that "no walk needed" role) and its page table is the Midgard→physical
/// structure the backend walker descends on misses.
#[derive(Debug)]
pub struct MidgardEngine {
    config: MidgardConfig,
    /// One VLB frontend per address space, created on first use.
    frontends: Vec<(Asid, MidgardMmu)>,
    /// Fixed frontend cycles actually paid by end-to-end translations
    /// (VLB probes + VMA-tree walk latency).
    frontend_cycles: u64,
    /// Fixed backend cycles actually paid (the borrowed backend `Mmu`'s
    /// TLB/PWC probe latency). The memory-hierarchy latency of charged
    /// backend walk accesses is simulated — and attributed — by the
    /// framework, so the breakdown below covers the fixed lookup costs
    /// both sides pay on every translation.
    backend_cycles: u64,
}

impl MidgardEngine {
    /// Builds the engine.
    pub fn new(config: MidgardConfig) -> Self {
        MidgardEngine {
            config,
            frontends: Vec::new(),
            frontend_cycles: 0,
            backend_cycles: 0,
        }
    }

    fn frontend_for(&mut self, asid: Asid) -> &mut MidgardMmu {
        if let Some(idx) = self.frontends.iter().position(|(a, _)| *a == asid) {
            return &mut self.frontends[idx].1;
        }
        let base =
            PhysAddr::new(MIDGARD_FRONTEND_BASE + u64::from(asid.raw()) * ENGINE_ASID_STRIDE);
        self.frontends
            .push((asid, MidgardMmu::new(self.config, base)));
        &mut self.frontends.last_mut().expect("just pushed").1
    }

    /// Registers a VMA with the address space's frontend.
    pub fn note_vma(&mut self, asid: Asid, start: VirtAddr, bytes: u64) {
        self.frontend_for(asid).register_vma(start, bytes);
    }

    /// Shoots a page out of the backend. The backend's page table and TLB
    /// are keyed by *Midgard* addresses, so the victim's virtual address is
    /// first remapped through the address space's frontend; a page outside
    /// any registered VMA was never installed and needs no work. The
    /// frontend VMA itself stays registered — reclaim unmaps pages, not
    /// regions.
    fn invalidate(&mut self, backend: &mut Mmu, asid: Asid, va: VirtAddr) -> InvalidationOutcome {
        let Some(mva) = self
            .frontends
            .iter()
            .find(|(a, _)| *a == asid)
            .and_then(|(_, frontend)| frontend.midgard_of(va))
        else {
            return InvalidationOutcome::default();
        };
        InvalidationOutcome::from_removed(backend.remove_mapping(asid, VirtAddr::new(mva)), 0)
    }

    fn translate(&mut self, backend: &mut Mmu, asid: Asid, va: VirtAddr) -> TranslationResult {
        let config = self.config;
        let frontend = self.frontend_for(asid);
        let Some((midgard_addr, frontend_latency, frontend_accesses)) =
            frontend.translate_frontend(va)
        else {
            // No VMA names this address: the frontend cannot even form a
            // Midgard address. MimicOS decides (map or segfault) through
            // the ordinary fault path.
            return TranslationResult {
                paddr: None,
                mapping: None,
                tlb_hit_level: None,
                fixed_latency: config.l1_vlb_latency,
                walk: None,
            };
        };
        self.frontend_cycles += frontend_latency.raw();
        let mva = VirtAddr::new(midgard_addr);
        let mut result = backend.translate(asid, mva);
        self.backend_cycles += result.fixed_latency.raw();
        result.fixed_latency += frontend_latency;
        if !frontend_accesses.is_empty() {
            // Both VLBs missed: the frontend walked its in-memory VMA tree.
            // Its node accesses are charged ahead of whatever the backend
            // walked (serial — the backend walk needs the Midgard address).
            let mut combined = frontend_accesses;
            match result.walk.take() {
                Some(walk) => {
                    for pa in &walk.accesses {
                        combined.push(*pa);
                    }
                    result.walk = Some(WalkOutcome {
                        mapping: walk.mapping,
                        accesses: combined,
                        parallel: false,
                    });
                }
                None => {
                    result.walk = Some(WalkOutcome {
                        mapping: result.mapping,
                        accesses: combined,
                        parallel: false,
                    });
                }
            }
        }
        result
    }

    /// Remaps a kernel-established mapping into the Midgard space and
    /// installs it in the backend.
    fn install(&mut self, backend: &mut Mmu, asid: Asid, mapping: &Mapping) -> Vec<PhysAddr> {
        let frontend = self.frontend_for(asid);
        let mva = match frontend.midgard_of(mapping.vaddr) {
            Some(mva) => mva,
            // Mapping outside any registered VMA (e.g. a direct API user
            // installing without `note_vma`): register a covering VMA on
            // the fly. Cover at least a 2 MiB-aligned window, not just
            // this page — page-by-page installs would otherwise create
            // one VMA per page and the frontend's linear VMA scan (and
            // its per-VMA VLB entries) would degrade quadratically.
            // Over-covering is harmless: frontend coverage only forms the
            // Midgard address; unmapped pages still fault in the backend.
            None => {
                const WINDOW: u64 = 2 << 20;
                let bytes = mapping.page_size.bytes().max(WINDOW);
                let start = VirtAddr::new(mapping.vaddr.raw() & !(bytes - 1));
                frontend.register_vma(start, bytes);
                frontend
                    .midgard_of(mapping.vaddr)
                    .expect("vma registered above")
            }
        };
        debug_assert_eq!(
            mva % mapping.page_size.bytes(),
            0,
            "register_vma preserves page alignment in the Midgard space"
        );
        let backend_mapping = Mapping {
            vaddr: VirtAddr::new(mva),
            paddr: mapping.paddr,
            page_size: mapping.page_size,
        };
        backend.install_mapping(asid, &backend_mapping)
    }

    fn report(&self, backend: &Mmu) -> EngineReport {
        let mut translations = 0u64;
        let mut l1 = 0u64;
        let mut l2 = 0u64;
        let mut walks = 0u64;
        for (_, frontend) in &self.frontends {
            let s = frontend.stats();
            translations += s.translations.get();
            l1 += s.l1_vlb_hits.get();
            l2 += s.l2_vlb_hits.get();
            walks += s.frontend_walks.get();
        }
        // Both sides of the fraction are the fixed lookup cycles the
        // *end-to-end* run actually paid (not the standalone MidgardMmu
        // backend model, which charges a constant per translation).
        let fixed_total = self.frontend_cycles + self.backend_cycles;
        let l2_lookups = walks + l2;
        EngineReport::Midgard {
            translations,
            l1_vlb_hits: l1,
            l2_vlb_hits: l2,
            frontend_walks: walks,
            frontend_fraction: if fixed_total == 0 {
                0.0
            } else {
                self.frontend_cycles as f64 / fixed_total as f64
            },
            l2_vlb_hit_ratio: if l2_lookups == 0 {
                0.0
            } else {
                l2 as f64 / l2_lookups as f64
            },
            backend_walks: backend.stats().walks.get(),
        }
    }
}

// ---------------------------------------------------------------------------
// RMM
// ---------------------------------------------------------------------------

/// RMM end to end: per-address-space range TLBs + range tables consulted
/// on L1/L2 TLB misses; addresses no range covers fall through to the
/// conventional page-table walk of the framework's [`Mmu`].
#[derive(Debug)]
pub struct RmmEngine {
    config: RmmConfig,
    /// One range TLB/table pair per address space, created on first use.
    rmms: Vec<(Asid, RmmMmu)>,
}

impl RmmEngine {
    /// Builds the engine.
    pub fn new(config: RmmConfig) -> Self {
        RmmEngine {
            config,
            rmms: Vec::new(),
        }
    }

    fn rmm_for(&mut self, asid: Asid) -> &mut RmmMmu {
        if let Some(idx) = self.rmms.iter().position(|(a, _)| *a == asid) {
            return &mut self.rmms[idx].1;
        }
        let base = PhysAddr::new(RMM_TABLE_BASE + u64::from(asid.raw()) * ENGINE_ASID_STRIDE);
        self.rmms.push((asid, RmmMmu::new(self.config, base)));
        &mut self.rmms.last_mut().expect("just pushed").1
    }

    fn translate(&mut self, mmu: &mut Mmu, asid: Asid, va: VirtAddr) -> TranslationResult {
        match mmu.probe_tlb(asid, va) {
            Ok(hit) => hit,
            Err(fixed) => {
                let rlb_latency = self.config.rlb_latency;
                match self.rmm_for(asid).translate(va) {
                    Some((paddr, latency, accesses)) => {
                        // Covered by a range: translate without a page walk
                        // and fill the TLBs with the page so the next
                        // access hits there (the RLB is probed alongside
                        // the L2 TLB in the paper's design).
                        let page = va.page_base(PageSize::Size4K);
                        let mapping = Mapping {
                            vaddr: page,
                            paddr: PhysAddr::new(paddr.raw() - va.page_offset(PageSize::Size4K)),
                            page_size: PageSize::Size4K,
                        };
                        mmu.external_translation(asid, &mapping);
                        let walk = if accesses.is_empty() {
                            None // RLB hit: no range-table walk.
                        } else {
                            Some(WalkOutcome {
                                mapping: Some(mapping),
                                accesses,
                                parallel: false, // B-tree descent is serial.
                            })
                        };
                        TranslationResult {
                            paddr: Some(paddr),
                            mapping: Some(mapping),
                            tlb_hit_level: None,
                            fixed_latency: fixed + latency,
                            walk,
                        }
                    }
                    // No range covers the address (demand-paged region or
                    // exhausted eager allocation): conventional page walk,
                    // with the wasted RLB probe latency on top.
                    None => mmu.walk_after_miss(asid, va, fixed + rlb_latency),
                }
            }
        }
    }

    fn report(&self) -> EngineReport {
        let mut range = 0u64;
        let mut fallback = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut ranges = 0u64;
        for (_, rmm) in &self.rmms {
            range += rmm.range_translations.get();
            fallback += rmm.fallback_translations.get();
            hits += rmm.rlb().hits.get();
            misses += rmm.rlb().misses.get();
            ranges += rmm.range_count() as u64;
        }
        let attempts = range + fallback;
        EngineReport::Rmm {
            range_translations: range,
            fallback_translations: fallback,
            rlb_hits: hits,
            rlb_misses: misses,
            ranges,
            range_coverage: if attempts == 0 {
                0.0
            } else {
                range as f64 / attempts as f64
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Utopia
// ---------------------------------------------------------------------------

/// Utopia end to end: on a TLB miss the RestSeg walkers (set-index
/// computation, TAR/SF caches, tag-array fetches) run first; pages the
/// kernel placed in a RestSeg resolve right there, everything else pays
/// the conventional page-table walk on top of the RestSeg lookup — the
/// cost structure Fig. 19 sweeps.
#[derive(Debug)]
pub struct UtopiaEngine {
    /// The RestSeg-side hardware (set-index + TAR/SF caches).
    utopia: UtopiaMmu,
    /// Pages resident in a RestSeg, keyed by `(asid, page base >> 12)` —
    /// fed by the kernel's placement decisions through [`InstallInfo`].
    /// The shift matters: page bases have twelve zero low bits, and the
    /// Fx hash keeps its entropy in the *high* bits while the hash map
    /// picks buckets from the *low* bits — unshifted keys collapse the
    /// whole resident set into a few probe chains (a measured ~40% of
    /// the Utopia cell's host time before the rekey).
    // vmlint: allow(fx-keying, "keyed (asid, va >> 12): the u64 is the virtual page number, shifted at every insert/lookup site in this file")
    resident: vm_types::FxHashMap<(u16, u64), Mapping>,
    /// Resident-page counts per page size (4K/2M/1G), so the per-miss
    /// residency probe can skip hash lookups for sizes with no entries.
    resident_by_size: [u64; 3],
    restseg_hits: Counter,
    rsw_fetches: Counter,
}

/// The `resident_by_size` index of a page size.
fn size_rank(size: PageSize) -> usize {
    match size {
        PageSize::Size4K => 0,
        PageSize::Size2M => 1,
        PageSize::Size1G => 2,
    }
}

impl UtopiaEngine {
    /// Builds the engine.
    pub fn new(config: UtopiaMmuConfig) -> Self {
        // Pre-size the resident map for a full RestSeg of base pages so
        // steady-state installs never pause to rehash mid-run.
        let resident_capacity = (config.restseg_bytes / 4096).min(1 << 20) as usize;
        UtopiaEngine {
            utopia: UtopiaMmu::new(config, PhysAddr::new(UTOPIA_TAG_BASE)),
            resident: vm_types::FxHashMap::with_capacity_and_hasher(
                resident_capacity,
                Default::default(),
            ),
            resident_by_size: [0; 3],
            restseg_hits: Counter::new(),
            rsw_fetches: Counter::new(),
        }
    }

    fn resident_mapping(&self, asid: Asid, va: VirtAddr) -> Option<Mapping> {
        for size in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
            if self.resident_by_size[size_rank(size)] == 0 {
                continue;
            }
            let key = (asid.raw(), va.page_base(size).raw() >> 12);
            if let Some(mapping) = self.resident.get(&key) {
                if mapping.page_size == size {
                    return Some(*mapping);
                }
            }
        }
        None
    }

    /// Drops `va`'s page from the RestSeg resident set (all sizes) and
    /// the TAR/SF caches. Returns the number of engine entries dropped.
    fn remove_resident(&mut self, asid: Asid, va: VirtAddr) -> usize {
        let mut engine_entries = 0;
        for probe in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
            if self.resident_by_size[size_rank(probe)] == 0 {
                continue;
            }
            let key = (asid.raw(), va.page_base(probe).raw() >> 12);
            if matches!(self.resident.get(&key), Some(m) if m.page_size == probe) {
                self.resident.remove(&key);
                self.resident_by_size[size_rank(probe)] -= 1;
                engine_entries += 1 + self.utopia.invalidate(va);
            }
        }
        engine_entries
    }

    /// Drops every RestSeg-resident page of one address space (teardown).
    fn flush_asid_resident(&mut self, asid: Asid) {
        let counts = &mut self.resident_by_size;
        self.resident.retain(|(a, _), m| {
            let keep = *a != asid.raw();
            if !keep {
                counts[size_rank(m.page_size)] -= 1;
            }
            keep
        });
    }

    fn translate(&mut self, mmu: &mut Mmu, asid: Asid, va: VirtAddr) -> TranslationResult {
        match mmu.probe_tlb(asid, va) {
            Ok(hit) => hit,
            Err(fixed) => {
                // The hardware always pays the RestSeg lookup first.
                let rsw = self.utopia.translate(va);
                self.rsw_fetches.add(rsw.metadata_accesses.len() as u64);
                let fixed = fixed + rsw.latency;
                if let Some(mapping) = self.resident_mapping(asid, va) {
                    self.restseg_hits.inc();
                    mmu.external_translation(asid, &mapping);
                    let walk = if rsw.metadata_accesses.is_empty() {
                        None // TAR/SF caches absorbed the tag lookup.
                    } else {
                        Some(WalkOutcome {
                            mapping: Some(mapping),
                            accesses: rsw.metadata_accesses,
                            parallel: true, // tag groups fetch in parallel
                        })
                    };
                    return TranslationResult {
                        paddr: Some(mapping.translate(va)),
                        mapping: Some(mapping),
                        tlb_hit_level: None,
                        fixed_latency: fixed,
                        walk,
                    };
                }
                // Not RestSeg-resident: conventional walk, with the RSW
                // tag fetches charged ahead of the page-table accesses.
                let mut result = mmu.walk_after_miss(asid, va, fixed);
                if !rsw.metadata_accesses.is_empty() {
                    if let Some(walk) = result.walk.take() {
                        // RSW tag fetches precede the page-table accesses;
                        // reuse the RSW list's buffer instead of copying.
                        let mut combined = rsw.metadata_accesses;
                        for pa in &walk.accesses {
                            combined.push(*pa);
                        }
                        result.walk = Some(WalkOutcome {
                            mapping: walk.mapping,
                            accesses: combined,
                            parallel: walk.parallel,
                        });
                    }
                }
                result
            }
        }
    }

    /// Installs a fault-time mapping; RestSeg placements (flagged by the
    /// kernel) additionally become resident on the RestSeg side.
    fn install(
        &mut self,
        mmu: &mut Mmu,
        asid: Asid,
        mapping: &Mapping,
        info: InstallInfo,
    ) -> Vec<PhysAddr> {
        if info.restseg_placed {
            if let Some(old) = self
                .resident
                .insert((asid.raw(), mapping.vaddr.raw() >> 12), *mapping)
            {
                self.resident_by_size[size_rank(old.page_size)] -= 1;
            }
            self.resident_by_size[size_rank(mapping.page_size)] += 1;
        }
        // The kernel keeps the page table authoritative for every page
        // (RestSeg-resident pages simply never walk it), so the install
        // accesses are the conventional page-table update.
        mmu.install_mapping(asid, mapping)
    }

    fn report(&self, mmu: &Mmu) -> EngineReport {
        EngineReport::Utopia {
            lookups: self.utopia.lookups.get(),
            restseg_hits: self.restseg_hits.get(),
            flexseg_walks: mmu.stats().walks.get(),
            rsw_fetches: self.rsw_fetches.get(),
            tar_hit_ratio: self.utopia.tar_hit_ratio(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmu::MmuConfig;
    use crate::pt::PageTableKind;
    use vm_types::Cycles;

    const A0: Asid = Asid::KERNEL;

    fn mapping(va: u64, pa: u64, size: PageSize) -> Mapping {
        Mapping {
            vaddr: VirtAddr::new(va),
            paddr: PhysAddr::new(pa),
            page_size: size,
        }
    }

    fn engine(config: EngineConfig) -> (TranslationEngine, Mmu) {
        (
            TranslationEngine::new(config),
            Mmu::new(MmuConfig::small_test(PageTableKind::Radix)),
        )
    }

    #[test]
    fn page_table_engine_matches_direct_mmu() {
        let (mut e, mut engine_mmu) = engine(EngineConfig::PageTable);
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let m = mapping(0x7f00_1000, 0x10_0000_1000, PageSize::Size4K);
        e.handle_fault_install(&mut engine_mmu, A0, &m, InstallInfo::default());
        mmu.install_mapping(A0, &m);
        engine_mmu.flush_tlb();
        mmu.flush_tlb();
        for offset in [0x0u64, 0x234, 0x5678 % 0x1000] {
            let va = VirtAddr::new(0x7f00_1000 + offset);
            assert_eq!(e.translate(&mut engine_mmu, A0, va), mmu.translate(A0, va));
        }
    }

    #[test]
    fn midgard_translates_end_to_end_and_walks_are_charged() {
        let (mut e, mut mmu) = engine(EngineConfig::Midgard(MidgardConfig::paper_baseline()));
        e.note_vma(A0, VirtAddr::new(0x4000_0000), 1 << 24);
        // Cold: no backend mapping yet — the access faults.
        let cold = e.translate(&mut mmu, A0, VirtAddr::new(0x4000_1234));
        assert!(cold.is_fault());
        // The kernel maps the page; install remaps into Midgard space.
        let m = mapping(0x4000_1000, 0x10_0000_1000, PageSize::Size4K);
        let accesses = e.handle_fault_install(&mut mmu, A0, &m, InstallInfo::default());
        assert!(!accesses.is_empty(), "backend table update is charged");
        let warm = e.translate(&mut mmu, A0, VirtAddr::new(0x4000_1234));
        assert_eq!(warm.paddr, Some(PhysAddr::new(0x10_0000_1234)));
        // Frontend latency is part of the fixed cost.
        assert!(warm.fixed_latency >= Cycles::new(1));
        let Some(EngineReport::Midgard { translations, .. }) = e.report(&mmu) else {
            panic!("midgard engine must report midgard stats");
        };
        assert!(translations >= 2);
    }

    #[test]
    fn midgard_huge_pages_stay_aligned_in_midgard_space() {
        let (mut e, mut mmu) = engine(EngineConfig::Midgard(MidgardConfig::paper_baseline()));
        // A VMA whose start is only 4 KiB aligned within its gigabyte.
        e.note_vma(A0, VirtAddr::new(0x4000_0000), 64 << 20);
        let m = mapping(0x4020_0000, 0x10_0020_0000, PageSize::Size2M);
        e.handle_fault_install(&mut mmu, A0, &m, InstallInfo::default());
        let r = e.translate(&mut mmu, A0, VirtAddr::new(0x4020_1234));
        assert_eq!(r.paddr, Some(PhysAddr::new(0x10_0020_1234)));
    }

    #[test]
    fn rmm_ranges_translate_without_page_walks() {
        let (mut e, mut mmu) = engine(EngineConfig::Rmm(RmmConfig::paper_baseline()));
        e.note_ranges(
            A0,
            &[RangeMapping {
                virt_start: VirtAddr::new(0x1000_0000),
                phys_start: PhysAddr::new(0x8000_0000),
                bytes: 64 << 20,
            }],
        );
        // First access misses the TLB and the RLB: the range-table walk is
        // charged, but the MMU performs no page walk.
        let first = e.translate(&mut mmu, A0, VirtAddr::new(0x1000_5000));
        assert_eq!(first.paddr, Some(PhysAddr::new(0x8000_5000)));
        assert!(first.walk.is_some(), "range-table walk charged");
        assert_eq!(mmu.stats().walks.get(), 0);
        // Second access to the same page hits the TLB fill.
        let second = e.translate(&mut mmu, A0, VirtAddr::new(0x1000_5678));
        assert!(second.tlb_hit_level.is_some());
        // An uncovered address falls through to the page table (faults).
        assert!(e
            .translate(&mut mmu, A0, VirtAddr::new(0x9000_0000))
            .is_fault());
        assert_eq!(mmu.stats().walks.get(), 1);
        let Some(EngineReport::Rmm {
            range_translations,
            fallback_translations,
            ..
        }) = e.report(&mmu)
        else {
            panic!("rmm engine must report rmm stats");
        };
        assert_eq!(range_translations, 1);
        assert_eq!(fallback_translations, 1);
    }

    #[test]
    fn flush_asid_tears_down_engine_state_too() {
        // A reused ASID must never inherit the torn-down address space's
        // RestSeg residency (or ranges, or VMAs) — only a fresh fault may
        // re-establish a translation.
        let (mut e, mut mmu) = engine(EngineConfig::Utopia(UtopiaMmuConfig::paper_baseline()));
        let resident = mapping(0x2000_0000, 0x30_0000_0000, PageSize::Size4K);
        e.handle_fault_install(
            &mut mmu,
            A0,
            &resident,
            InstallInfo {
                restseg_placed: true,
            },
        );
        e.flush_asid(&mut mmu, A0);
        // The page table is still authoritative (kernel teardown removes
        // process mappings separately); the RestSeg side must be empty.
        mmu.flush_tlb();
        let r = e.translate(&mut mmu, A0, VirtAddr::new(0x2000_0123));
        let Some(EngineReport::Utopia { restseg_hits, .. }) = e.report(&mmu) else {
            panic!("utopia engine must report utopia stats");
        };
        assert_eq!(restseg_hits, 0, "resident set must be cleared");
        // The translation now resolves through the page-table walk path.
        assert!(r.walk.is_some());
    }

    #[test]
    fn utopia_restseg_eviction_invalidates_the_resident_set() {
        // The PR 4 open end: a page reclaimed out of a RestSeg must fault
        // again instead of RSW-hitting on stale residency.
        let (mut e, mut mmu) = engine(EngineConfig::Utopia(UtopiaMmuConfig::paper_baseline()));
        let resident = mapping(0x2000_0000, 0x30_0000_0000, PageSize::Size4K);
        e.handle_fault_install(
            &mut mmu,
            A0,
            &resident,
            InstallInfo {
                restseg_placed: true,
            },
        );
        mmu.flush_tlb();
        // Sanity: the page resolves through the RestSeg without a walk.
        let walks_before = mmu.stats().walks.get();
        assert_eq!(
            e.translate(&mut mmu, A0, VirtAddr::new(0x2000_0123)).paddr,
            Some(PhysAddr::new(0x30_0000_0123))
        );
        assert_eq!(mmu.stats().walks.get(), walks_before);
        assert_eq!(e.resident_mappings(), vec![(A0, resident)]);
        // The kernel evicts the page from the RestSeg: shootdown.
        let out = e.invalidate(&mut mmu, A0, VirtAddr::new(0x2000_0000), PageSize::Size4K);
        assert!(out.engine_entries_dropped >= 1, "residency must be dropped");
        assert!(out.tlb_entries_dropped > 0, "TLB fill must be dropped");
        assert!(e.resident_mappings().is_empty());
        // The next access faults (page table emptied too) instead of
        // serving the stale RestSeg translation.
        let after = e.translate(&mut mmu, A0, VirtAddr::new(0x2000_0123));
        assert!(after.is_fault(), "reclaimed RestSeg page must fault again");
        let Some(EngineReport::Utopia { restseg_hits, .. }) = e.report(&mmu) else {
            panic!("utopia engine must report utopia stats");
        };
        assert_eq!(restseg_hits, 1, "only the pre-eviction hit");
    }

    #[test]
    fn rmm_invalidate_splits_ranges_and_page_table_drops_the_leaf() {
        let (mut e, mut mmu) = engine(EngineConfig::Rmm(RmmConfig::paper_baseline()));
        e.note_ranges(
            A0,
            &[RangeMapping {
                virt_start: VirtAddr::new(0x1000_0000),
                phys_start: PhysAddr::new(0x8000_0000),
                bytes: 64 << 10,
            }],
        );
        assert_eq!(
            e.translate(&mut mmu, A0, VirtAddr::new(0x1000_5000)).paddr,
            Some(PhysAddr::new(0x8000_5000))
        );
        let out = e.invalidate(&mut mmu, A0, VirtAddr::new(0x1000_5000), PageSize::Size4K);
        assert!(out.engine_entries_dropped >= 1, "range must be split");
        // The victim page no longer translates through a range (it falls
        // through to the — empty — page table and faults)...
        mmu.flush_tlb();
        assert!(e
            .translate(&mut mmu, A0, VirtAddr::new(0x1000_5000))
            .is_fault());
        // ...while both flanks still translate through their ranges.
        assert_eq!(
            e.translate(&mut mmu, A0, VirtAddr::new(0x1000_4000)).paddr,
            Some(PhysAddr::new(0x8000_4000))
        );
        assert_eq!(
            e.translate(&mut mmu, A0, VirtAddr::new(0x1000_6000)).paddr,
            Some(PhysAddr::new(0x8000_6000))
        );
        assert_eq!(e.resident_ranges().len(), 2);
    }

    #[test]
    fn midgard_invalidate_removes_the_backend_mapping() {
        let (mut e, mut mmu) = engine(EngineConfig::Midgard(MidgardConfig::paper_baseline()));
        e.note_vma(A0, VirtAddr::new(0x4000_0000), 1 << 24);
        let m = mapping(0x4000_1000, 0x10_0000_1000, PageSize::Size4K);
        e.handle_fault_install(&mut mmu, A0, &m, InstallInfo::default());
        assert!(!e
            .translate(&mut mmu, A0, VirtAddr::new(0x4000_1234))
            .is_fault());
        let out = e.invalidate(&mut mmu, A0, VirtAddr::new(0x4000_1000), PageSize::Size4K);
        assert!(out.tlb_entries_dropped > 0, "backend TLB entry dropped");
        assert!(
            e.translate(&mut mmu, A0, VirtAddr::new(0x4000_1234))
                .is_fault(),
            "the reclaimed page must fault in the backend again"
        );
        // Invalidating an address outside any VMA is a no-op.
        let noop = e.invalidate(&mut mmu, A0, VirtAddr::new(0x9000_0000), PageSize::Size4K);
        assert_eq!(noop, InvalidationOutcome::default());
    }

    #[test]
    fn utopia_restseg_pages_skip_the_page_walk() {
        let (mut e, mut mmu) = engine(EngineConfig::Utopia(UtopiaMmuConfig::paper_baseline()));
        let resident = mapping(0x2000_0000, 0x30_0000_0000, PageSize::Size4K);
        e.handle_fault_install(
            &mut mmu,
            A0,
            &resident,
            InstallInfo {
                restseg_placed: true,
            },
        );
        let spilled = mapping(0x2000_1000, 0x10_0000_1000, PageSize::Size4K);
        e.handle_fault_install(&mut mmu, A0, &spilled, InstallInfo::default());
        mmu.flush_tlb();
        let walks_before = mmu.stats().walks.get();
        let hit = e.translate(&mut mmu, A0, VirtAddr::new(0x2000_0123));
        assert_eq!(hit.paddr, Some(PhysAddr::new(0x30_0000_0123)));
        assert_eq!(
            mmu.stats().walks.get(),
            walks_before,
            "restseg-resident page must not walk the page table"
        );
        mmu.flush_tlb();
        let miss = e.translate(&mut mmu, A0, VirtAddr::new(0x2000_1234));
        assert_eq!(miss.paddr, Some(PhysAddr::new(0x10_0000_1234)));
        assert!(
            mmu.stats().walks.get() > walks_before,
            "flexseg page pays the page walk"
        );
        let Some(EngineReport::Utopia {
            restseg_hits,
            lookups,
            ..
        }) = e.report(&mmu)
        else {
            panic!("utopia engine must report utopia stats");
        };
        assert_eq!(restseg_hits, 1);
        assert!(lookups >= 2);
    }
}
