//! Translation lookaside buffers: a generic set-associative TLB and the
//! multi-level, multi-page-size hierarchy of the paper's baseline (Table 4).
//!
//! Every entry is tagged with the [`Asid`] of the address space that
//! installed it, so lookups from one process never observe another
//! process's translations and a context switch can either keep all entries
//! resident (ASID-tagged mode) or flush selectively per address space.

use mimic_os::Mapping;
use serde::{Deserialize, Serialize};
use vm_types::{Asid, Counter, Cycles, FastDiv, PageSize, VirtAddr};

/// Configuration of a single TLB.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Name used in statistics (e.g. `"L1 D-TLB (4KB)"`).
    pub name: String,
    /// Number of entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Lookup latency.
    pub latency: Cycles,
    /// Page sizes this TLB can hold.
    pub page_sizes: Vec<PageSize>,
}

impl TlbConfig {
    /// Builds a TLB configuration.
    pub fn new(
        name: &str,
        entries: usize,
        ways: usize,
        latency_cycles: u64,
        sizes: &[PageSize],
    ) -> Self {
        TlbConfig {
            name: name.to_string(),
            entries,
            ways,
            latency: Cycles::new(latency_cycles),
            page_sizes: sizes.to_vec(),
        }
    }
}

/// Statistics for one TLB.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookup hits.
    pub hits: Counter,
    /// Lookup misses.
    pub misses: Counter,
    /// Entries evicted by fills.
    pub evictions: Counter,
    /// Entries invalidated by shootdowns.
    pub invalidations: Counter,
    /// Entries removed by full flushes.
    pub flushed_entries: Counter,
    /// Entries removed by ASID-selective flushes.
    pub asid_flushed_entries: Counter,
}

impl TlbStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.misses.get() as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct TlbEntry {
    asid: Asid,
    vpn: u64,
    size: PageSize,
    mapping: Mapping,
    lru: u64,
}

/// Dense index of a page size into the per-size resident counts.
fn size_rank(size: PageSize) -> usize {
    match size {
        PageSize::Size4K => 0,
        PageSize::Size2M => 1,
        PageSize::Size1G => 2,
    }
}

/// A set-associative, ASID-tagged TLB.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tlb {
    config: TlbConfig,
    /// Way-major flat storage: set `s` occupies
    /// `slots[s * ways .. (s + 1) * ways]`. One contiguous allocation keeps
    /// each set on adjacent cache lines; per-set `Vec`s scattered every
    /// probe across the heap.
    slots: Vec<Option<TlbEntry>>,
    ways: usize,
    clock: u64,
    stats: TlbStats,
    /// Precomputed set-count divisor for the per-lookup index.
    set_div: FastDiv,
    /// Resident-entry count per page size (indexed by [`size_rank`]): a
    /// lookup skips the set probe of any size with no entries at all, so
    /// an all-4K workload pays one probe in the three-size L2 instead of
    /// three.
    present: [u64; 3],
}

impl Tlb {
    /// Builds a TLB from its configuration.
    pub fn new(config: TlbConfig) -> Self {
        let sets = (config.entries / config.ways).max(1);
        Tlb {
            slots: vec![None; sets * config.ways],
            ways: config.ways,
            clock: 0,
            stats: TlbStats::default(),
            set_div: FastDiv::new(sets as u64),
            config,
            present: [0; 3],
        }
    }

    /// The TLB's configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Lookup latency.
    pub fn latency(&self) -> Cycles {
        self.config.latency
    }

    /// `true` if this TLB can hold entries of the given page size.
    pub fn supports(&self, size: PageSize) -> bool {
        self.config.page_sizes.contains(&size)
    }

    fn set_index(&self, vpn: u64) -> usize {
        self.set_div.rem(vpn) as usize
    }

    /// Looks up `va` in the address space `asid`, probing every supported
    /// page size. Returns the mapping on a hit. Entries installed under a
    /// different ASID never match.
    pub fn lookup(&mut self, asid: Asid, va: VirtAddr) -> Option<Mapping> {
        self.lookup_where(asid, va).map(|(m, _)| m)
    }

    /// [`Tlb::lookup`] that additionally reports *which* slot hit (a flat
    /// index into the way-major storage), for the L0 pointer cache.
    pub(crate) fn lookup_where(&mut self, asid: Asid, va: VirtAddr) -> Option<(Mapping, u32)> {
        self.clock += 1;
        for size_idx in 0..self.config.page_sizes.len() {
            let size = self.config.page_sizes[size_idx];
            if self.present[size_rank(size)] == 0 {
                continue; // no entry of this size anywhere: skip the probe
            }
            let vpn = va.page_number(size).number();
            let base = self.set_index(vpn) * self.ways;
            for (way, entry) in self.slots[base..base + self.ways].iter_mut().enumerate() {
                if let Some(entry) = entry {
                    if entry.asid == asid && entry.size == size && entry.vpn == vpn {
                        entry.lru = self.clock;
                        self.stats.hits.inc();
                        return Some((entry.mapping, (base + way) as u32));
                    }
                }
            }
        }
        self.stats.misses.inc();
        None
    }

    /// Replays a [`Tlb::lookup`] hit against the entry at flat index
    /// `slot` (previously reported by [`Tlb::lookup_where`]), verifying
    /// first that a real lookup would return exactly that entry: the slot
    /// must hold a live entry of `asid` covering `va`, and no page size
    /// probed earlier in `page_sizes` order may also match. On success the
    /// state effects are identical to the full lookup (probe clock, LRU
    /// touch, hit count). Returns `None` — with **no** state mutated —
    /// when the verification fails (the entry was evicted, invalidated,
    /// flushed or replaced since the pointer was recorded).
    pub(crate) fn hit_at(&mut self, slot: u32, asid: Asid, va: VirtAddr) -> Option<Mapping> {
        let entry = (*self.slots.get(slot as usize)?)?;
        if entry.asid != asid || entry.vpn != va.page_number(entry.size).number() {
            return None;
        }
        // An entry of an earlier-probed size would win the real lookup:
        // stand down to the slow path, which re-records the pointer.
        for size_idx in 0..self.config.page_sizes.len() {
            let size = self.config.page_sizes[size_idx];
            if size == entry.size {
                break;
            }
            if self.present[size_rank(size)] == 0 {
                continue;
            }
            let vpn = va.page_number(size).number();
            let base = self.set_index(vpn) * self.ways;
            if self.slots[base..base + self.ways]
                .iter()
                .flatten()
                .any(|e| e.asid == asid && e.size == size && e.vpn == vpn)
            {
                return None;
            }
        }
        self.clock += 1;
        let clock = self.clock;
        let entry = self.slots[slot as usize].as_mut().expect("checked above");
        entry.lru = clock;
        self.stats.hits.inc();
        Some(entry.mapping)
    }

    /// Replays the state effects of a [`Tlb::lookup`] miss (the probe
    /// clock tick and the miss count) without scanning any set.
    pub(crate) fn replay_miss(&mut self) {
        self.clock += 1;
        self.stats.misses.inc();
    }

    /// Whether a [`Tlb::lookup`] would hit, without perturbing any state
    /// (no clock tick, no LRU touch, no statistics).
    pub(crate) fn would_hit(&self, asid: Asid, va: VirtAddr) -> bool {
        for size_idx in 0..self.config.page_sizes.len() {
            let size = self.config.page_sizes[size_idx];
            if self.present[size_rank(size)] == 0 {
                continue;
            }
            let vpn = va.page_number(size).number();
            let base = self.set_index(vpn) * self.ways;
            if self.slots[base..base + self.ways]
                .iter()
                .flatten()
                .any(|e| e.asid == asid && e.size == size && e.vpn == vpn)
            {
                return true;
            }
        }
        false
    }

    /// Fills a mapping for address space `asid` into the TLB (after a
    /// walk), evicting the LRU entry of the target set if necessary.
    /// Returns the evicted mapping, if any.
    pub fn fill(&mut self, asid: Asid, mapping: Mapping) -> Option<Mapping> {
        self.fill_where(asid, mapping).1
    }

    /// [`Tlb::fill`] that additionally reports the flat slot index the
    /// mapping landed in (`None` when the page size is unsupported), for
    /// the L0 pointer cache.
    pub(crate) fn fill_where(
        &mut self,
        asid: Asid,
        mapping: Mapping,
    ) -> (Option<u32>, Option<Mapping>) {
        if !self.supports(mapping.page_size) {
            return (None, None);
        }
        self.clock += 1;
        let vpn = mapping.vaddr.page_number(mapping.page_size).number();
        let base = self.set_index(vpn) * self.ways;
        let clock = self.clock;
        let set = &mut self.slots[base..base + self.ways];
        // Already present: refresh.
        for (way, entry) in set.iter_mut().enumerate() {
            if let Some(entry) = entry {
                if entry.asid == asid && entry.size == mapping.page_size && entry.vpn == vpn {
                    entry.mapping = mapping;
                    entry.lru = clock;
                    return (Some((base + way) as u32), None);
                }
            }
        }
        // Free way?
        if let Some(way) = set.iter().position(|e| e.is_none()) {
            set[way] = Some(TlbEntry {
                asid,
                vpn,
                size: mapping.page_size,
                mapping,
                lru: clock,
            });
            self.present[size_rank(mapping.page_size)] += 1;
            return (Some((base + way) as u32), None);
        }
        // Evict LRU.
        let victim_way = set
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.map(|e| e.lru).unwrap_or(0))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let victim = set[victim_way];
        set[victim_way] = Some(TlbEntry {
            asid,
            vpn,
            size: mapping.page_size,
            mapping,
            lru: clock,
        });
        if let Some(victim) = victim {
            self.present[size_rank(victim.size)] -= 1;
        }
        self.present[size_rank(mapping.page_size)] += 1;
        self.stats.evictions.inc();
        (Some((base + victim_way) as u32), victim.map(|e| e.mapping))
    }

    /// Invalidates any entry of address space `asid` covering `va` (TLB
    /// shootdown). Returns the number of entries removed.
    pub fn invalidate(&mut self, asid: Asid, va: VirtAddr) -> usize {
        let mut removed = 0;
        for size_idx in 0..self.config.page_sizes.len() {
            let size = self.config.page_sizes[size_idx];
            if self.present[size_rank(size)] == 0 {
                continue;
            }
            let vpn = va.page_number(size).number();
            let base = self.set_index(vpn) * self.ways;
            for slot in &mut self.slots[base..base + self.ways] {
                if let Some(e) = slot {
                    if e.asid == asid && e.size == size && e.vpn == vpn {
                        *slot = None;
                        self.present[size_rank(size)] -= 1;
                        removed += 1;
                        self.stats.invalidations.inc();
                    }
                }
            }
        }
        removed
    }

    /// Every resident entry as `(asid, mapping)` pairs, for invariant
    /// checking and debugging (not a modeled hardware operation).
    pub fn entries(&self) -> impl Iterator<Item = (Asid, Mapping)> + '_ {
        self.slots.iter().flatten().map(|e| (e.asid, e.mapping))
    }

    /// Flushes the entire TLB (a context switch without ASID support).
    /// Returns the number of entries dropped.
    pub fn flush(&mut self) -> usize {
        let mut dropped = 0;
        for slot in &mut self.slots {
            if slot.take().is_some() {
                dropped += 1;
            }
        }
        self.present = [0; 3];
        self.stats.flushed_entries.add(dropped as u64);
        dropped
    }

    /// Flushes only the entries of address space `asid` (e.g. on address
    /// space teardown, or `invpcid` on x86). Returns the number of entries
    /// dropped.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        let mut dropped = 0;
        for slot in &mut self.slots {
            if matches!(slot, Some(e) if e.asid == asid) {
                let e = slot.take().expect("matched above");
                self.present[size_rank(e.size)] -= 1;
                dropped += 1;
            }
        }
        self.stats.asid_flushed_entries.add(dropped as u64);
        dropped
    }

    /// Number of valid entries currently resident.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|e| e.is_some()).count()
    }

    /// Number of valid entries belonging to address space `asid`.
    pub fn occupancy_of(&self, asid: Asid) -> usize {
        self.slots
            .iter()
            .filter(|e| matches!(e, Some(e) if e.asid == asid))
            .count()
    }
}

/// Which level of the TLB hierarchy satisfied a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TlbLevel {
    /// First-level data TLB (either page size).
    L1,
    /// Second-level unified TLB.
    L2,
}

/// Configuration of the full data-side TLB hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbHierarchyConfig {
    /// L1 TLB for 4 KiB pages.
    pub l1_4k: TlbConfig,
    /// L1 TLB for 2 MiB pages.
    pub l1_2m: TlbConfig,
    /// Unified second-level TLB.
    pub l2: TlbConfig,
}

impl TlbHierarchyConfig {
    /// The paper's baseline (Table 4): 64-entry 4-way L1 D-TLB for 4 KiB
    /// pages, 32-entry 4-way L1 D-TLB for 2 MiB pages, 2048-entry 16-way
    /// 12-cycle unified L2 TLB.
    pub fn paper_baseline() -> Self {
        TlbHierarchyConfig {
            l1_4k: TlbConfig::new("L1 D-TLB (4KB)", 64, 4, 1, &[PageSize::Size4K]),
            l1_2m: TlbConfig::new(
                "L1 D-TLB (2MB)",
                32,
                4,
                1,
                &[PageSize::Size2M, PageSize::Size1G],
            ),
            l2: TlbConfig::new(
                "L2 TLB",
                2048,
                16,
                12,
                &[PageSize::Size4K, PageSize::Size2M, PageSize::Size1G],
            ),
        }
    }

    /// A tiny hierarchy for unit tests (4+4 entry L1s, 16-entry L2).
    pub fn small_test() -> Self {
        TlbHierarchyConfig {
            l1_4k: TlbConfig::new("L1-4K", 4, 2, 1, &[PageSize::Size4K]),
            l1_2m: TlbConfig::new("L1-2M", 4, 2, 1, &[PageSize::Size2M, PageSize::Size1G]),
            l2: TlbConfig::new(
                "L2",
                16,
                4,
                12,
                &[PageSize::Size4K, PageSize::Size2M, PageSize::Size1G],
            ),
        }
    }
}

impl Default for TlbHierarchyConfig {
    fn default() -> Self {
        TlbHierarchyConfig::paper_baseline()
    }
}

/// Number of slots in the L0 pointer cache (a power of two).
const L0_SLOTS: usize = 1024;

/// One slot of the L0 pointer cache: which L1 TLB slot satisfied the last
/// lookup of `(asid, vpn4k)`. The slot holds **no mapping of its own** —
/// only a pointer into an L1, re-verified against the live entry on every
/// consult — so it can never serve translation state the TLBs no longer
/// hold, and shootdowns, flushes and evictions need no L0 hook at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct L0Slot {
    asid: Asid,
    vpn4k: u64,
    /// `true`: `slot` indexes the 2M/1G L1; `false`: the 4K L1.
    huge_bank: bool,
    slot: u32,
}

/// The two-level, multi-page-size data TLB hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TlbHierarchy {
    l1_4k: Tlb,
    l1_2m: Tlb,
    l2: Tlb,
    /// Lookups that missed in both levels (require a page walk).
    pub full_misses: Counter,
    /// The software "L0": a direct-mapped cache of pointers into the L1
    /// TLBs, keyed by `(asid, 4 KiB page)`, that lets the steady-state
    /// loop replay an L1 hit without the full per-size probe cascade. A
    /// pure host-side accelerator — [`TlbHierarchy::l0_lookup`] produces
    /// state and statistics byte-identical to [`TlbHierarchy::lookup`],
    /// or stands down entirely.
    l0: Vec<Option<L0Slot>>,
}

impl TlbHierarchy {
    /// Builds the hierarchy from a configuration.
    pub fn new(config: TlbHierarchyConfig) -> Self {
        TlbHierarchy {
            l1_4k: Tlb::new(config.l1_4k),
            l1_2m: Tlb::new(config.l1_2m),
            l2: Tlb::new(config.l2),
            full_misses: Counter::new(),
            l0: vec![None; L0_SLOTS],
        }
    }

    fn l0_index(asid: Asid, vpn4k: u64) -> usize {
        (vpn4k ^ (u64::from(asid.raw()).wrapping_mul(0x9E37))) as usize & (L0_SLOTS - 1)
    }

    fn l0_record(&mut self, asid: Asid, vpn4k: u64, huge_bank: bool, slot: u32) {
        self.l0[Self::l0_index(asid, vpn4k)] = Some(L0Slot {
            asid,
            vpn4k,
            huge_bank,
            slot,
        });
    }

    /// Fast-path lookup through the L0 pointer cache. On a hit, the
    /// returned `(mapping, latency)` and **every** state effect (probe
    /// clocks, LRU touches, hit/miss counts) are exactly what a full
    /// [`TlbHierarchy::lookup`] resolving in an L1 would produce. Returns
    /// `None` — mutating nothing — whenever the pointer is absent or can
    /// no longer be verified against the live L1 entry; the caller then
    /// takes the ordinary path, which re-records the pointer.
    #[inline]
    pub fn l0_lookup(&mut self, asid: Asid, va: VirtAddr) -> Option<(Mapping, Cycles)> {
        let vpn4k = va.page_number(PageSize::Size4K).number();
        let s = self.l0[Self::l0_index(asid, vpn4k)]?;
        if s.asid != asid || s.vpn4k != vpn4k {
            return None;
        }
        if !s.huge_bank {
            let m = self.l1_4k.hit_at(s.slot, asid, va)?;
            return Some((m, self.l1_4k.latency()));
        }
        // The real path probes the 4K L1 first; a resident 4K entry for
        // this page would win, so the huge-bank pointer must stand down.
        if self.l1_4k.would_hit(asid, va) {
            return None;
        }
        let m = self.l1_2m.hit_at(s.slot, asid, va)?;
        self.l1_4k.replay_miss();
        Some((m, self.l1_4k.latency()))
    }

    /// Read-only variant of [`TlbHierarchy::l0_lookup`] for invariant
    /// checking: the mapping an L0 hit *would* serve for `(asid, va)`,
    /// without perturbing clocks, LRU order or statistics.
    pub fn l0_peek(&self, asid: Asid, va: VirtAddr) -> Option<Mapping> {
        let vpn4k = va.page_number(PageSize::Size4K).number();
        let s = self.l0[Self::l0_index(asid, vpn4k)]?;
        if s.asid != asid || s.vpn4k != vpn4k {
            return None;
        }
        let bank = if s.huge_bank {
            &self.l1_2m
        } else {
            &self.l1_4k
        };
        let entry = (*bank.slots.get(s.slot as usize)?)?;
        if entry.asid != asid || entry.vpn != va.page_number(entry.size).number() {
            return None;
        }
        if s.huge_bank && self.l1_4k.would_hit(asid, va) {
            return None;
        }
        Some(entry.mapping)
    }

    /// Looks up `va` in address space `asid`. On a hit, returns the
    /// mapping, the level that hit and the accumulated lookup latency; on a
    /// full miss returns the latency of probing both levels.
    pub fn lookup(&mut self, asid: Asid, va: VirtAddr) -> (Option<(Mapping, TlbLevel)>, Cycles) {
        let mut latency = self.l1_4k.latency();
        let vpn4k = va.page_number(PageSize::Size4K).number();
        if let Some((m, slot)) = self.l1_4k.lookup_where(asid, va) {
            self.l0_record(asid, vpn4k, false, slot);
            return (Some((m, TlbLevel::L1)), latency);
        }
        if let Some((m, slot)) = self.l1_2m.lookup_where(asid, va) {
            self.l0_record(asid, vpn4k, true, slot);
            return (Some((m, TlbLevel::L1)), latency);
        }
        latency += self.l2.latency();
        if let Some(m) = self.l2.lookup(asid, va) {
            // Promote to the appropriate L1 (and point the L0 at it).
            if let Some(slot) = self.fill_l1(asid, m) {
                self.l0_record(asid, vpn4k, m.page_size != PageSize::Size4K, slot);
            }
            return (Some((m, TlbLevel::L2)), latency);
        }
        self.full_misses.inc();
        (None, latency)
    }

    fn fill_l1(&mut self, asid: Asid, mapping: Mapping) -> Option<u32> {
        match mapping.page_size {
            PageSize::Size4K => self.l1_4k.fill_where(asid, mapping).0,
            _ => self.l1_2m.fill_where(asid, mapping).0,
        }
    }

    /// Fills a mapping for address space `asid` into both levels after a
    /// page walk.
    pub fn fill(&mut self, asid: Asid, mapping: Mapping) {
        let slot = self.fill_l1(asid, mapping);
        if mapping.page_size == PageSize::Size4K {
            // Point the L0 at the fresh 4K entry so the next access to the
            // page takes the fast path. A huge fill covers many 4 KiB
            // pages; its L0 pointers are recorded lazily, on lookup.
            if let Some(slot) = slot {
                let vpn4k = mapping.vaddr.page_number(PageSize::Size4K).number();
                self.l0_record(asid, vpn4k, false, slot);
            }
        }
        self.l2.fill(asid, mapping);
    }

    /// Invalidates any entries of `asid` covering `va` in every level.
    /// Returns the number of entries dropped across the hierarchy.
    pub fn invalidate(&mut self, asid: Asid, va: VirtAddr) -> usize {
        self.l1_4k.invalidate(asid, va)
            + self.l1_2m.invalidate(asid, va)
            + self.l2.invalidate(asid, va)
    }

    /// Every resident entry across all levels as `(asid, mapping)` pairs
    /// (L1s first, then L2; a mapping cached in both levels appears twice).
    /// For invariant checking and debugging.
    pub fn entries(&self) -> impl Iterator<Item = (Asid, Mapping)> + '_ {
        self.l1_4k
            .entries()
            .chain(self.l1_2m.entries())
            .chain(self.l2.entries())
    }

    /// Flushes every level. Returns the number of entries dropped.
    pub fn flush(&mut self) -> usize {
        self.l1_4k.flush() + self.l1_2m.flush() + self.l2.flush()
    }

    /// Flushes only the entries of `asid` in every level. Returns the
    /// number of entries dropped.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        self.l1_4k.flush_asid(asid) + self.l1_2m.flush_asid(asid) + self.l2.flush_asid(asid)
    }

    /// Number of resident entries belonging to `asid`, across all levels.
    pub fn occupancy_of(&self, asid: Asid) -> usize {
        self.l1_4k.occupancy_of(asid) + self.l1_2m.occupancy_of(asid) + self.l2.occupancy_of(asid)
    }

    /// The L2 (second-level) TLB statistics — the level whose MPKI the paper
    /// validates in Fig. 10.
    pub fn l2_stats(&self) -> &TlbStats {
        self.l2.stats()
    }

    /// L1 4 KiB TLB statistics.
    pub fn l1_4k_stats(&self) -> &TlbStats {
        self.l1_4k.stats()
    }

    /// L1 2 MiB TLB statistics.
    pub fn l1_2m_stats(&self) -> &TlbStats {
        self.l1_2m.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::PhysAddr;

    const A0: Asid = Asid::KERNEL;

    fn mapping(va: u64, size: PageSize) -> Mapping {
        Mapping {
            vaddr: VirtAddr::new(va).page_base(size),
            paddr: PhysAddr::new(0x1_0000_0000 + va),
            page_size: size,
        }
    }

    #[test]
    fn miss_fill_hit_roundtrip() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 16, 4, 1, &[PageSize::Size4K]));
        let m = mapping(0x5000, PageSize::Size4K);
        assert!(tlb.lookup(A0, VirtAddr::new(0x5000)).is_none());
        tlb.fill(A0, m);
        assert_eq!(tlb.lookup(A0, VirtAddr::new(0x5abc)), Some(m));
        assert_eq!(tlb.stats().hits.get(), 1);
        assert_eq!(tlb.stats().misses.get(), 1);
    }

    #[test]
    fn capacity_evictions_use_lru() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 2, 2, 1, &[PageSize::Size4K]));
        tlb.fill(A0, mapping(0x1000, PageSize::Size4K));
        tlb.fill(A0, mapping(0x2000, PageSize::Size4K));
        // Touch the first entry so the second becomes LRU.
        tlb.lookup(A0, VirtAddr::new(0x1000));
        let evicted = tlb.fill(A0, mapping(0x3000, PageSize::Size4K));
        assert_eq!(evicted.unwrap().vaddr, VirtAddr::new(0x2000));
        assert!(tlb.lookup(A0, VirtAddr::new(0x1000)).is_some());
        assert!(tlb.lookup(A0, VirtAddr::new(0x2000)).is_none());
    }

    #[test]
    fn unsupported_page_size_is_not_cached() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 16, 4, 1, &[PageSize::Size4K]));
        assert!(tlb.fill(A0, mapping(0x20_0000, PageSize::Size2M)).is_none());
        assert!(tlb.lookup(A0, VirtAddr::new(0x20_0000)).is_none());
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 16, 4, 1, &[PageSize::Size4K]));
        tlb.fill(A0, mapping(0x7000, PageSize::Size4K));
        assert_eq!(tlb.invalidate(A0, VirtAddr::new(0x7000)), 1);
        assert_eq!(tlb.invalidate(A0, VirtAddr::new(0x7000)), 0);
        assert!(tlb.lookup(A0, VirtAddr::new(0x7000)).is_none());
    }

    #[test]
    fn flush_clears_everything() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 16, 4, 1, &[PageSize::Size4K]));
        for i in 0..8u64 {
            tlb.fill(A0, mapping(0x1000 * (i + 1), PageSize::Size4K));
        }
        assert!(tlb.occupancy() > 0);
        let dropped = tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
        assert_eq!(tlb.stats().flushed_entries.get(), dropped as u64);
    }

    #[test]
    fn different_asids_do_not_alias() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 16, 4, 1, &[PageSize::Size4K]));
        let a = Asid::new(1);
        let b = Asid::new(2);
        let ma = mapping(0x5000, PageSize::Size4K);
        let mut mb = mapping(0x5000, PageSize::Size4K);
        mb.paddr = PhysAddr::new(0x2_0000_0000);
        tlb.fill(a, ma);
        tlb.fill(b, mb);
        // Same virtual page, two address spaces: each sees its own frame.
        assert_eq!(tlb.lookup(a, VirtAddr::new(0x5123)), Some(ma));
        assert_eq!(tlb.lookup(b, VirtAddr::new(0x5123)), Some(mb));
        assert!(tlb.lookup(Asid::new(3), VirtAddr::new(0x5123)).is_none());
        assert_eq!(tlb.occupancy(), 2);
    }

    #[test]
    fn flush_asid_is_selective() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 16, 4, 1, &[PageSize::Size4K]));
        let a = Asid::new(1);
        let b = Asid::new(2);
        for i in 0..4u64 {
            tlb.fill(a, mapping(0x1000 * (i + 1), PageSize::Size4K));
            tlb.fill(b, mapping(0x1000 * (i + 1), PageSize::Size4K));
        }
        assert_eq!(tlb.occupancy_of(a), 4);
        let dropped = tlb.flush_asid(a);
        assert_eq!(dropped, 4);
        assert_eq!(tlb.occupancy_of(a), 0);
        assert_eq!(tlb.occupancy_of(b), 4, "other address space untouched");
        assert_eq!(tlb.stats().asid_flushed_entries.get(), 4);
        assert!(tlb.lookup(b, VirtAddr::new(0x1000)).is_some());
    }

    #[test]
    fn invalidate_is_asid_scoped() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 16, 4, 1, &[PageSize::Size4K]));
        let a = Asid::new(1);
        let b = Asid::new(2);
        tlb.fill(a, mapping(0x7000, PageSize::Size4K));
        tlb.fill(b, mapping(0x7000, PageSize::Size4K));
        assert_eq!(tlb.invalidate(a, VirtAddr::new(0x7000)), 1);
        assert!(tlb.lookup(b, VirtAddr::new(0x7000)).is_some());
    }

    #[test]
    fn hierarchy_invalidate_counts_across_levels_and_entries_enumerate() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        let m = mapping(0x9000, PageSize::Size4K);
        h.fill(A0, m); // fills the 4K L1 and the L2
        assert_eq!(h.entries().count(), 2);
        assert!(h.entries().all(|(asid, e)| asid == A0 && e == m));
        let dropped = h.invalidate(A0, VirtAddr::new(0x9abc));
        assert_eq!(dropped, 2, "shootdown must hit both levels");
        assert_eq!(h.entries().count(), 0);
        let (hit, _) = h.lookup(A0, VirtAddr::new(0x9000));
        assert!(hit.is_none());
    }

    #[test]
    fn hierarchy_promotes_l2_hits_to_l1() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        let m = mapping(0x9000, PageSize::Size4K);
        // Fill only the L2 by filling then flushing L1s via many conflicting fills.
        h.fill(A0, m);
        // Evict from tiny L1 by filling conflicting entries.
        for i in 1..64u64 {
            h.fill(A0, mapping(0x9000 + i * 0x1000, PageSize::Size4K));
        }
        let (hit, _) = h.lookup(A0, VirtAddr::new(0x9000));
        // Whether it hits in L1 or L2 depends on conflicts, but it must hit
        // somewhere because the L2 is large enough in this test.
        if let Some((_, level)) = hit {
            assert!(matches!(level, TlbLevel::L1 | TlbLevel::L2));
        }
    }

    #[test]
    fn hierarchy_full_miss_counts() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        let (hit, latency) = h.lookup(A0, VirtAddr::new(0xdead_0000));
        assert!(hit.is_none());
        assert_eq!(h.full_misses.get(), 1);
        // Full miss pays L1 + L2 latency.
        assert_eq!(latency, Cycles::new(13));
    }

    #[test]
    fn huge_pages_live_in_the_2m_l1() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::paper_baseline());
        h.fill(A0, mapping(0x20_0000, PageSize::Size2M));
        let (hit, latency) = h.lookup(A0, VirtAddr::new(0x20_1234));
        assert!(hit.is_some());
        assert_eq!(latency, Cycles::new(1));
        assert_eq!(h.l1_2m_stats().hits.get(), 1);
    }

    #[test]
    fn l2_mpki_inputs_are_tracked() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        for i in 0..1000u64 {
            h.lookup(A0, VirtAddr::new(i * 0x10_0000));
        }
        assert_eq!(h.l2_stats().misses.get(), 1000);
        assert!(h.l2_stats().miss_ratio() > 0.99);
    }

    #[test]
    fn one_gig_mappings_are_supported() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::paper_baseline());
        h.fill(A0, mapping(0x4000_0000, PageSize::Size1G));
        let (hit, _) = h.lookup(A0, VirtAddr::new(0x7fff_ffff));
        assert!(hit.is_some());
    }

    #[test]
    fn hierarchy_flush_asid_spans_all_levels() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        let a = Asid::new(1);
        let b = Asid::new(2);
        h.fill(a, mapping(0x1000, PageSize::Size4K));
        h.fill(a, mapping(0x20_0000, PageSize::Size2M));
        h.fill(b, mapping(0x1000, PageSize::Size4K));
        assert!(h.occupancy_of(a) >= 2);
        let dropped = h.flush_asid(a);
        assert!(dropped >= 2, "entries dropped from L1s and L2");
        assert_eq!(h.occupancy_of(a), 0);
        assert!(h.occupancy_of(b) > 0);
    }

    #[test]
    fn l0_replays_l1_hits_with_identical_stats() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        let m = mapping(0x5000, PageSize::Size4K);
        h.fill(A0, m); // records an L0 pointer for the 4K page
        let before_hits = h.l1_4k_stats().hits.get();
        let got = h.l0_lookup(A0, VirtAddr::new(0x5abc));
        assert_eq!(got, Some((m, Cycles::new(1))));
        // Exactly the stats an ordinary L1 hit would have produced.
        assert_eq!(h.l1_4k_stats().hits.get(), before_hits + 1);
        assert_eq!(h.l1_2m_stats().hits.get() + h.l1_2m_stats().misses.get(), 0);
        assert_eq!(h.l2_stats().hits.get() + h.l2_stats().misses.get(), 0);
    }

    #[test]
    fn l0_replays_huge_bank_hits_including_the_4k_probe_miss() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        let m = mapping(0x20_0000, PageSize::Size2M);
        h.fill(A0, m);
        // The fill records huge L0 pointers lazily: prime via a lookup.
        let (hit, _) = h.lookup(A0, VirtAddr::new(0x20_1234));
        assert!(hit.is_some());
        let misses_4k = h.l1_4k_stats().misses.get();
        let hits_2m = h.l1_2m_stats().hits.get();
        // Same 4 KiB page as the priming lookup: the L0 is keyed by the
        // 4 KiB page number even when the mapping is huge.
        let got = h.l0_lookup(A0, VirtAddr::new(0x20_1abc));
        assert_eq!(got, Some((m, Cycles::new(1))));
        // The real path probes (and misses) the 4K L1 before the 2M hit.
        assert_eq!(h.l1_4k_stats().misses.get(), misses_4k + 1);
        assert_eq!(h.l1_2m_stats().hits.get(), hits_2m + 1);
    }

    #[test]
    fn l0_stands_down_after_invalidation_and_flush() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        let m = mapping(0x5000, PageSize::Size4K);
        h.fill(A0, m);
        assert!(h.l0_lookup(A0, VirtAddr::new(0x5000)).is_some());
        h.invalidate(A0, VirtAddr::new(0x5000));
        assert_eq!(h.l0_peek(A0, VirtAddr::new(0x5000)), None);
        assert_eq!(h.l0_lookup(A0, VirtAddr::new(0x5000)), None);

        h.fill(A0, m);
        assert!(h.l0_lookup(A0, VirtAddr::new(0x5000)).is_some());
        h.flush_asid(A0);
        assert_eq!(h.l0_lookup(A0, VirtAddr::new(0x5000)), None);

        h.fill(A0, m);
        h.flush();
        assert_eq!(h.l0_lookup(A0, VirtAddr::new(0x5000)), None);
    }

    #[test]
    fn l0_stands_down_when_the_slot_was_reused_by_another_page() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        h.fill(A0, mapping(0x5000, PageSize::Size4K));
        assert!(h.l0_lookup(A0, VirtAddr::new(0x5000)).is_some());
        // Evict the 4K L1 set with conflicting fills (tiny 4+4 L1).
        for i in 1..64u64 {
            h.fill(A0, mapping(0x5000 + i * 0x1000, PageSize::Size4K));
        }
        // The stale pointer either fails verification (None) or the page
        // was re-filled into the same slot and serves the right mapping;
        // it must never produce a different page's translation.
        if let Some((m, _)) = h.l0_lookup(A0, VirtAddr::new(0x5000)) {
            assert_eq!(m, mapping(0x5000, PageSize::Size4K));
        }
    }

    #[test]
    fn l0_huge_pointer_defers_to_a_resident_4k_entry() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        let huge = mapping(0x20_0000, PageSize::Size2M);
        h.fill(A0, huge);
        let (hit, _) = h.lookup(A0, VirtAddr::new(0x20_0000));
        assert!(hit.is_some()); // huge L0 pointer is now recorded
                                // A 4K mapping for the same base page appears (e.g. after a
                                // demotion): the real probe order prefers the 4K L1, so the huge
                                // pointer must not short-circuit past it.
        let mut base = mapping(0x20_0000, PageSize::Size4K);
        base.paddr = PhysAddr::new(0x9_0000_0000);
        h.fill(A0, base);
        let got = h.l0_lookup(A0, VirtAddr::new(0x20_0123));
        assert_eq!(got, Some((base, Cycles::new(1))));
    }

    #[test]
    fn l0_differential_against_plain_lookup() {
        // An L0-accelerated hierarchy must stay byte-equivalent to a
        // plain one across a mixed stream of lookups, fills, shootdowns
        // and ASID flushes.
        let mut fast = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        let mut slow = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20_000 {
            let r = rng();
            let asid = Asid::new((r >> 32) as u16 & 1);
            let page = (r >> 8) & 0x1f;
            let va = VirtAddr::new(0x4000_0000 + page * 0x1000);
            match r % 10 {
                0 => {
                    let m = mapping(va.raw(), PageSize::Size4K);
                    fast.fill(asid, m);
                    slow.fill(asid, m);
                }
                1 => {
                    assert_eq!(fast.invalidate(asid, va), slow.invalidate(asid, va));
                }
                2 => {
                    assert_eq!(fast.flush_asid(asid), slow.flush_asid(asid));
                }
                _ => {
                    // The accelerated path: L0 first, ordinary lookup on
                    // stand-down — exactly how `Mmu::l0_translate` +
                    // `Mmu::probe_tlb` compose.
                    let got = match fast.l0_lookup(asid, va) {
                        Some((m, latency)) => (Some((m, TlbLevel::L1)), latency),
                        None => fast.lookup(asid, va),
                    };
                    let want = slow.lookup(asid, va);
                    assert_eq!(got, want);
                }
            }
        }
        assert_eq!(fast.l1_4k_stats().hits.get(), slow.l1_4k_stats().hits.get());
        assert_eq!(
            fast.l1_4k_stats().misses.get(),
            slow.l1_4k_stats().misses.get()
        );
        assert_eq!(fast.l2_stats().hits.get(), slow.l2_stats().hits.get());
        assert_eq!(fast.l2_stats().misses.get(), slow.l2_stats().misses.get());
        assert_eq!(fast.full_misses.get(), slow.full_misses.get());
        let mut fast_entries: Vec<_> = fast.entries().collect();
        let mut slow_entries: Vec<_> = slow.entries().collect();
        fast_entries.sort_by_key(|(a, m)| (a.raw(), m.vaddr.raw()));
        slow_entries.sort_by_key(|(a, m)| (a.raw(), m.vaddr.raw()));
        assert_eq!(fast_entries, slow_entries);
    }
}
