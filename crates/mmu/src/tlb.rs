//! Translation lookaside buffers: a generic set-associative TLB and the
//! multi-level, multi-page-size hierarchy of the paper's baseline (Table 4).
//!
//! Every entry is tagged with the [`Asid`] of the address space that
//! installed it, so lookups from one process never observe another
//! process's translations and a context switch can either keep all entries
//! resident (ASID-tagged mode) or flush selectively per address space.

use mimic_os::Mapping;
use serde::{Deserialize, Serialize};
use vm_types::{Asid, Counter, Cycles, FastDiv, PageSize, VirtAddr};

/// Configuration of a single TLB.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Name used in statistics (e.g. `"L1 D-TLB (4KB)"`).
    pub name: String,
    /// Number of entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Lookup latency.
    pub latency: Cycles,
    /// Page sizes this TLB can hold.
    pub page_sizes: Vec<PageSize>,
}

impl TlbConfig {
    /// Builds a TLB configuration.
    pub fn new(
        name: &str,
        entries: usize,
        ways: usize,
        latency_cycles: u64,
        sizes: &[PageSize],
    ) -> Self {
        TlbConfig {
            name: name.to_string(),
            entries,
            ways,
            latency: Cycles::new(latency_cycles),
            page_sizes: sizes.to_vec(),
        }
    }
}

/// Statistics for one TLB.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookup hits.
    pub hits: Counter,
    /// Lookup misses.
    pub misses: Counter,
    /// Entries evicted by fills.
    pub evictions: Counter,
    /// Entries invalidated by shootdowns.
    pub invalidations: Counter,
    /// Entries removed by full flushes.
    pub flushed_entries: Counter,
    /// Entries removed by ASID-selective flushes.
    pub asid_flushed_entries: Counter,
}

impl TlbStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.misses.get() as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct TlbEntry {
    asid: Asid,
    vpn: u64,
    size: PageSize,
    mapping: Mapping,
    lru: u64,
}

/// A set-associative, ASID-tagged TLB.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tlb {
    config: TlbConfig,
    sets: Vec<Vec<Option<TlbEntry>>>,
    clock: u64,
    stats: TlbStats,
    /// Precomputed set-count divisor for the per-lookup index.
    set_div: FastDiv,
}

impl Tlb {
    /// Builds a TLB from its configuration.
    pub fn new(config: TlbConfig) -> Self {
        let sets = (config.entries / config.ways).max(1);
        Tlb {
            sets: vec![vec![None; config.ways]; sets],
            clock: 0,
            stats: TlbStats::default(),
            set_div: FastDiv::new(sets as u64),
            config,
        }
    }

    /// The TLB's configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Lookup latency.
    pub fn latency(&self) -> Cycles {
        self.config.latency
    }

    /// `true` if this TLB can hold entries of the given page size.
    pub fn supports(&self, size: PageSize) -> bool {
        self.config.page_sizes.contains(&size)
    }

    fn set_index(&self, vpn: u64) -> usize {
        self.set_div.rem(vpn) as usize
    }

    /// Looks up `va` in the address space `asid`, probing every supported
    /// page size. Returns the mapping on a hit. Entries installed under a
    /// different ASID never match.
    pub fn lookup(&mut self, asid: Asid, va: VirtAddr) -> Option<Mapping> {
        self.clock += 1;
        for size_idx in 0..self.config.page_sizes.len() {
            let size = self.config.page_sizes[size_idx];
            let vpn = va.page_number(size).number();
            let set_idx = self.set_index(vpn);
            for entry in self.sets[set_idx].iter_mut().flatten() {
                if entry.asid == asid && entry.size == size && entry.vpn == vpn {
                    entry.lru = self.clock;
                    self.stats.hits.inc();
                    return Some(entry.mapping);
                }
            }
        }
        self.stats.misses.inc();
        None
    }

    /// Fills a mapping for address space `asid` into the TLB (after a
    /// walk), evicting the LRU entry of the target set if necessary.
    /// Returns the evicted mapping, if any.
    pub fn fill(&mut self, asid: Asid, mapping: Mapping) -> Option<Mapping> {
        if !self.supports(mapping.page_size) {
            return None;
        }
        self.clock += 1;
        let vpn = mapping.vaddr.page_number(mapping.page_size).number();
        let set_idx = self.set_index(vpn);
        let clock = self.clock;
        let set = &mut self.sets[set_idx];
        // Already present: refresh.
        for entry in set.iter_mut().flatten() {
            if entry.asid == asid && entry.size == mapping.page_size && entry.vpn == vpn {
                entry.mapping = mapping;
                entry.lru = clock;
                return None;
            }
        }
        // Free way?
        if let Some(slot) = set.iter_mut().find(|e| e.is_none()) {
            *slot = Some(TlbEntry {
                asid,
                vpn,
                size: mapping.page_size,
                mapping,
                lru: clock,
            });
            return None;
        }
        // Evict LRU.
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.map(|e| e.lru).unwrap_or(0))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let victim = set[victim_idx].map(|e| e.mapping);
        set[victim_idx] = Some(TlbEntry {
            asid,
            vpn,
            size: mapping.page_size,
            mapping,
            lru: clock,
        });
        self.stats.evictions.inc();
        victim
    }

    /// Invalidates any entry of address space `asid` covering `va` (TLB
    /// shootdown). Returns the number of entries removed.
    pub fn invalidate(&mut self, asid: Asid, va: VirtAddr) -> usize {
        let mut removed = 0;
        for size_idx in 0..self.config.page_sizes.len() {
            let size = self.config.page_sizes[size_idx];
            let vpn = va.page_number(size).number();
            let set_idx = self.set_index(vpn);
            for slot in &mut self.sets[set_idx] {
                if let Some(e) = slot {
                    if e.asid == asid && e.size == size && e.vpn == vpn {
                        *slot = None;
                        removed += 1;
                        self.stats.invalidations.inc();
                    }
                }
            }
        }
        removed
    }

    /// Every resident entry as `(asid, mapping)` pairs, for invariant
    /// checking and debugging (not a modeled hardware operation).
    pub fn entries(&self) -> impl Iterator<Item = (Asid, Mapping)> + '_ {
        self.sets
            .iter()
            .flat_map(|set| set.iter().flatten().map(|e| (e.asid, e.mapping)))
    }

    /// Flushes the entire TLB (a context switch without ASID support).
    /// Returns the number of entries dropped.
    pub fn flush(&mut self) -> usize {
        let mut dropped = 0;
        for set in &mut self.sets {
            for slot in set {
                if slot.take().is_some() {
                    dropped += 1;
                }
            }
        }
        self.stats.flushed_entries.add(dropped as u64);
        dropped
    }

    /// Flushes only the entries of address space `asid` (e.g. on address
    /// space teardown, or `invpcid` on x86). Returns the number of entries
    /// dropped.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        let mut dropped = 0;
        for set in &mut self.sets {
            for slot in set {
                if matches!(slot, Some(e) if e.asid == asid) {
                    *slot = None;
                    dropped += 1;
                }
            }
        }
        self.stats.asid_flushed_entries.add(dropped as u64);
        dropped
    }

    /// Number of valid entries currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|e| e.is_some()).count())
            .sum()
    }

    /// Number of valid entries belonging to address space `asid`.
    pub fn occupancy_of(&self, asid: Asid) -> usize {
        self.sets
            .iter()
            .map(|s| {
                s.iter()
                    .filter(|e| matches!(e, Some(e) if e.asid == asid))
                    .count()
            })
            .sum()
    }
}

/// Which level of the TLB hierarchy satisfied a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TlbLevel {
    /// First-level data TLB (either page size).
    L1,
    /// Second-level unified TLB.
    L2,
}

/// Configuration of the full data-side TLB hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbHierarchyConfig {
    /// L1 TLB for 4 KiB pages.
    pub l1_4k: TlbConfig,
    /// L1 TLB for 2 MiB pages.
    pub l1_2m: TlbConfig,
    /// Unified second-level TLB.
    pub l2: TlbConfig,
}

impl TlbHierarchyConfig {
    /// The paper's baseline (Table 4): 64-entry 4-way L1 D-TLB for 4 KiB
    /// pages, 32-entry 4-way L1 D-TLB for 2 MiB pages, 2048-entry 16-way
    /// 12-cycle unified L2 TLB.
    pub fn paper_baseline() -> Self {
        TlbHierarchyConfig {
            l1_4k: TlbConfig::new("L1 D-TLB (4KB)", 64, 4, 1, &[PageSize::Size4K]),
            l1_2m: TlbConfig::new(
                "L1 D-TLB (2MB)",
                32,
                4,
                1,
                &[PageSize::Size2M, PageSize::Size1G],
            ),
            l2: TlbConfig::new(
                "L2 TLB",
                2048,
                16,
                12,
                &[PageSize::Size4K, PageSize::Size2M, PageSize::Size1G],
            ),
        }
    }

    /// A tiny hierarchy for unit tests (4+4 entry L1s, 16-entry L2).
    pub fn small_test() -> Self {
        TlbHierarchyConfig {
            l1_4k: TlbConfig::new("L1-4K", 4, 2, 1, &[PageSize::Size4K]),
            l1_2m: TlbConfig::new("L1-2M", 4, 2, 1, &[PageSize::Size2M, PageSize::Size1G]),
            l2: TlbConfig::new(
                "L2",
                16,
                4,
                12,
                &[PageSize::Size4K, PageSize::Size2M, PageSize::Size1G],
            ),
        }
    }
}

impl Default for TlbHierarchyConfig {
    fn default() -> Self {
        TlbHierarchyConfig::paper_baseline()
    }
}

/// The two-level, multi-page-size data TLB hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TlbHierarchy {
    l1_4k: Tlb,
    l1_2m: Tlb,
    l2: Tlb,
    /// Lookups that missed in both levels (require a page walk).
    pub full_misses: Counter,
}

impl TlbHierarchy {
    /// Builds the hierarchy from a configuration.
    pub fn new(config: TlbHierarchyConfig) -> Self {
        TlbHierarchy {
            l1_4k: Tlb::new(config.l1_4k),
            l1_2m: Tlb::new(config.l1_2m),
            l2: Tlb::new(config.l2),
            full_misses: Counter::new(),
        }
    }

    /// Looks up `va` in address space `asid`. On a hit, returns the
    /// mapping, the level that hit and the accumulated lookup latency; on a
    /// full miss returns the latency of probing both levels.
    pub fn lookup(&mut self, asid: Asid, va: VirtAddr) -> (Option<(Mapping, TlbLevel)>, Cycles) {
        let mut latency = self.l1_4k.latency();
        if let Some(m) = self.l1_4k.lookup(asid, va) {
            return (Some((m, TlbLevel::L1)), latency);
        }
        if let Some(m) = self.l1_2m.lookup(asid, va) {
            return (Some((m, TlbLevel::L1)), latency);
        }
        latency += self.l2.latency();
        if let Some(m) = self.l2.lookup(asid, va) {
            // Promote to the appropriate L1.
            self.fill_l1(asid, m);
            return (Some((m, TlbLevel::L2)), latency);
        }
        self.full_misses.inc();
        (None, latency)
    }

    fn fill_l1(&mut self, asid: Asid, mapping: Mapping) {
        match mapping.page_size {
            PageSize::Size4K => {
                self.l1_4k.fill(asid, mapping);
            }
            _ => {
                self.l1_2m.fill(asid, mapping);
            }
        }
    }

    /// Fills a mapping for address space `asid` into both levels after a
    /// page walk.
    pub fn fill(&mut self, asid: Asid, mapping: Mapping) {
        self.fill_l1(asid, mapping);
        self.l2.fill(asid, mapping);
    }

    /// Invalidates any entries of `asid` covering `va` in every level.
    /// Returns the number of entries dropped across the hierarchy.
    pub fn invalidate(&mut self, asid: Asid, va: VirtAddr) -> usize {
        self.l1_4k.invalidate(asid, va)
            + self.l1_2m.invalidate(asid, va)
            + self.l2.invalidate(asid, va)
    }

    /// Every resident entry across all levels as `(asid, mapping)` pairs
    /// (L1s first, then L2; a mapping cached in both levels appears twice).
    /// For invariant checking and debugging.
    pub fn entries(&self) -> impl Iterator<Item = (Asid, Mapping)> + '_ {
        self.l1_4k
            .entries()
            .chain(self.l1_2m.entries())
            .chain(self.l2.entries())
    }

    /// Flushes every level. Returns the number of entries dropped.
    pub fn flush(&mut self) -> usize {
        self.l1_4k.flush() + self.l1_2m.flush() + self.l2.flush()
    }

    /// Flushes only the entries of `asid` in every level. Returns the
    /// number of entries dropped.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        self.l1_4k.flush_asid(asid) + self.l1_2m.flush_asid(asid) + self.l2.flush_asid(asid)
    }

    /// Number of resident entries belonging to `asid`, across all levels.
    pub fn occupancy_of(&self, asid: Asid) -> usize {
        self.l1_4k.occupancy_of(asid) + self.l1_2m.occupancy_of(asid) + self.l2.occupancy_of(asid)
    }

    /// The L2 (second-level) TLB statistics — the level whose MPKI the paper
    /// validates in Fig. 10.
    pub fn l2_stats(&self) -> &TlbStats {
        self.l2.stats()
    }

    /// L1 4 KiB TLB statistics.
    pub fn l1_4k_stats(&self) -> &TlbStats {
        self.l1_4k.stats()
    }

    /// L1 2 MiB TLB statistics.
    pub fn l1_2m_stats(&self) -> &TlbStats {
        self.l1_2m.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::PhysAddr;

    const A0: Asid = Asid::KERNEL;

    fn mapping(va: u64, size: PageSize) -> Mapping {
        Mapping {
            vaddr: VirtAddr::new(va).page_base(size),
            paddr: PhysAddr::new(0x1_0000_0000 + va),
            page_size: size,
        }
    }

    #[test]
    fn miss_fill_hit_roundtrip() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 16, 4, 1, &[PageSize::Size4K]));
        let m = mapping(0x5000, PageSize::Size4K);
        assert!(tlb.lookup(A0, VirtAddr::new(0x5000)).is_none());
        tlb.fill(A0, m);
        assert_eq!(tlb.lookup(A0, VirtAddr::new(0x5abc)), Some(m));
        assert_eq!(tlb.stats().hits.get(), 1);
        assert_eq!(tlb.stats().misses.get(), 1);
    }

    #[test]
    fn capacity_evictions_use_lru() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 2, 2, 1, &[PageSize::Size4K]));
        tlb.fill(A0, mapping(0x1000, PageSize::Size4K));
        tlb.fill(A0, mapping(0x2000, PageSize::Size4K));
        // Touch the first entry so the second becomes LRU.
        tlb.lookup(A0, VirtAddr::new(0x1000));
        let evicted = tlb.fill(A0, mapping(0x3000, PageSize::Size4K));
        assert_eq!(evicted.unwrap().vaddr, VirtAddr::new(0x2000));
        assert!(tlb.lookup(A0, VirtAddr::new(0x1000)).is_some());
        assert!(tlb.lookup(A0, VirtAddr::new(0x2000)).is_none());
    }

    #[test]
    fn unsupported_page_size_is_not_cached() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 16, 4, 1, &[PageSize::Size4K]));
        assert!(tlb.fill(A0, mapping(0x20_0000, PageSize::Size2M)).is_none());
        assert!(tlb.lookup(A0, VirtAddr::new(0x20_0000)).is_none());
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 16, 4, 1, &[PageSize::Size4K]));
        tlb.fill(A0, mapping(0x7000, PageSize::Size4K));
        assert_eq!(tlb.invalidate(A0, VirtAddr::new(0x7000)), 1);
        assert_eq!(tlb.invalidate(A0, VirtAddr::new(0x7000)), 0);
        assert!(tlb.lookup(A0, VirtAddr::new(0x7000)).is_none());
    }

    #[test]
    fn flush_clears_everything() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 16, 4, 1, &[PageSize::Size4K]));
        for i in 0..8u64 {
            tlb.fill(A0, mapping(0x1000 * (i + 1), PageSize::Size4K));
        }
        assert!(tlb.occupancy() > 0);
        let dropped = tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
        assert_eq!(tlb.stats().flushed_entries.get(), dropped as u64);
    }

    #[test]
    fn different_asids_do_not_alias() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 16, 4, 1, &[PageSize::Size4K]));
        let a = Asid::new(1);
        let b = Asid::new(2);
        let ma = mapping(0x5000, PageSize::Size4K);
        let mut mb = mapping(0x5000, PageSize::Size4K);
        mb.paddr = PhysAddr::new(0x2_0000_0000);
        tlb.fill(a, ma);
        tlb.fill(b, mb);
        // Same virtual page, two address spaces: each sees its own frame.
        assert_eq!(tlb.lookup(a, VirtAddr::new(0x5123)), Some(ma));
        assert_eq!(tlb.lookup(b, VirtAddr::new(0x5123)), Some(mb));
        assert!(tlb.lookup(Asid::new(3), VirtAddr::new(0x5123)).is_none());
        assert_eq!(tlb.occupancy(), 2);
    }

    #[test]
    fn flush_asid_is_selective() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 16, 4, 1, &[PageSize::Size4K]));
        let a = Asid::new(1);
        let b = Asid::new(2);
        for i in 0..4u64 {
            tlb.fill(a, mapping(0x1000 * (i + 1), PageSize::Size4K));
            tlb.fill(b, mapping(0x1000 * (i + 1), PageSize::Size4K));
        }
        assert_eq!(tlb.occupancy_of(a), 4);
        let dropped = tlb.flush_asid(a);
        assert_eq!(dropped, 4);
        assert_eq!(tlb.occupancy_of(a), 0);
        assert_eq!(tlb.occupancy_of(b), 4, "other address space untouched");
        assert_eq!(tlb.stats().asid_flushed_entries.get(), 4);
        assert!(tlb.lookup(b, VirtAddr::new(0x1000)).is_some());
    }

    #[test]
    fn invalidate_is_asid_scoped() {
        let mut tlb = Tlb::new(TlbConfig::new("T", 16, 4, 1, &[PageSize::Size4K]));
        let a = Asid::new(1);
        let b = Asid::new(2);
        tlb.fill(a, mapping(0x7000, PageSize::Size4K));
        tlb.fill(b, mapping(0x7000, PageSize::Size4K));
        assert_eq!(tlb.invalidate(a, VirtAddr::new(0x7000)), 1);
        assert!(tlb.lookup(b, VirtAddr::new(0x7000)).is_some());
    }

    #[test]
    fn hierarchy_invalidate_counts_across_levels_and_entries_enumerate() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        let m = mapping(0x9000, PageSize::Size4K);
        h.fill(A0, m); // fills the 4K L1 and the L2
        assert_eq!(h.entries().count(), 2);
        assert!(h.entries().all(|(asid, e)| asid == A0 && e == m));
        let dropped = h.invalidate(A0, VirtAddr::new(0x9abc));
        assert_eq!(dropped, 2, "shootdown must hit both levels");
        assert_eq!(h.entries().count(), 0);
        let (hit, _) = h.lookup(A0, VirtAddr::new(0x9000));
        assert!(hit.is_none());
    }

    #[test]
    fn hierarchy_promotes_l2_hits_to_l1() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        let m = mapping(0x9000, PageSize::Size4K);
        // Fill only the L2 by filling then flushing L1s via many conflicting fills.
        h.fill(A0, m);
        // Evict from tiny L1 by filling conflicting entries.
        for i in 1..64u64 {
            h.fill(A0, mapping(0x9000 + i * 0x1000, PageSize::Size4K));
        }
        let (hit, _) = h.lookup(A0, VirtAddr::new(0x9000));
        // Whether it hits in L1 or L2 depends on conflicts, but it must hit
        // somewhere because the L2 is large enough in this test.
        if let Some((_, level)) = hit {
            assert!(matches!(level, TlbLevel::L1 | TlbLevel::L2));
        }
    }

    #[test]
    fn hierarchy_full_miss_counts() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        let (hit, latency) = h.lookup(A0, VirtAddr::new(0xdead_0000));
        assert!(hit.is_none());
        assert_eq!(h.full_misses.get(), 1);
        // Full miss pays L1 + L2 latency.
        assert_eq!(latency, Cycles::new(13));
    }

    #[test]
    fn huge_pages_live_in_the_2m_l1() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::paper_baseline());
        h.fill(A0, mapping(0x20_0000, PageSize::Size2M));
        let (hit, latency) = h.lookup(A0, VirtAddr::new(0x20_1234));
        assert!(hit.is_some());
        assert_eq!(latency, Cycles::new(1));
        assert_eq!(h.l1_2m_stats().hits.get(), 1);
    }

    #[test]
    fn l2_mpki_inputs_are_tracked() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        for i in 0..1000u64 {
            h.lookup(A0, VirtAddr::new(i * 0x10_0000));
        }
        assert_eq!(h.l2_stats().misses.get(), 1000);
        assert!(h.l2_stats().miss_ratio() > 0.99);
    }

    #[test]
    fn one_gig_mappings_are_supported() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::paper_baseline());
        h.fill(A0, mapping(0x4000_0000, PageSize::Size1G));
        let (hit, _) = h.lookup(A0, VirtAddr::new(0x7fff_ffff));
        assert!(hit.is_some());
    }

    #[test]
    fn hierarchy_flush_asid_spans_all_levels() {
        let mut h = TlbHierarchy::new(TlbHierarchyConfig::small_test());
        let a = Asid::new(1);
        let b = Asid::new(2);
        h.fill(a, mapping(0x1000, PageSize::Size4K));
        h.fill(a, mapping(0x20_0000, PageSize::Size2M));
        h.fill(b, mapping(0x1000, PageSize::Size4K));
        assert!(h.occupancy_of(a) >= 2);
        let dropped = h.flush_asid(a);
        assert!(dropped >= 2, "entries dropped from L1s and L2");
        assert_eq!(h.occupancy_of(a), 0);
        assert!(h.occupancy_of(b) > 0);
    }
}
