//! MMU models for the Virtuoso framework: a configurable TLB hierarchy,
//! page-walk caches, hardware page-table walkers for several page-table
//! designs (4-level radix, elastic cuckoo hashing, open-addressing and
//! chained hash tables), and the alternative translation architectures the
//! paper evaluates — Utopia restrictive segments, Midgard intermediate
//! address spaces and RMM range translation.
//!
//! The MMU is *access generating*: a translation request returns which TLB
//! level hit (and its latency) or, on a miss, the ordered list of physical
//! memory accesses the page-table walk performs. The Virtuoso framework
//! sends those accesses through the cache hierarchy and DRAM model to obtain
//! the walk latency, which is how the paper captures page-table-induced
//! cache and DRAM contention.
//!
//! # Examples
//!
//! ```
//! use mmu_sim::{Mmu, MmuConfig, PageTableKind};
//! use mimic_os::Mapping;
//! use vm_types::{Asid, PageSize, PhysAddr, VirtAddr};
//!
//! let mut mmu = Mmu::new(MmuConfig::paper_baseline(PageTableKind::Radix));
//! let asid = Asid::new(1);
//! mmu.install_mapping(asid, &Mapping {
//!     vaddr: VirtAddr::new(0x2000),
//!     paddr: PhysAddr::new(0x8000_2000),
//!     page_size: PageSize::Size4K,
//! });
//! mmu.flush_tlb();                              // drop the install-time fill
//! let first = mmu.translate(asid, VirtAddr::new(0x2010));
//! assert!(first.tlb_hit_level.is_none());       // cold TLB: page walk
//! let second = mmu.translate(asid, VirtAddr::new(0x2010));
//! assert!(second.tlb_hit_level.is_some());      // now the TLB hits
//! // Another address space never observes these translations.
//! assert!(mmu.translate(Asid::new(2), VirtAddr::new(0x2010)).is_fault());
//! ```

pub mod engine;
pub mod midgard;
pub mod mmu;
pub mod pt;
pub mod pwc;
pub mod rmm;
pub mod tlb;
pub mod utopia_mmu;

pub use crate::mmu::{
    AsidMmuStats, Mmu, MmuConfig, MmuStats, RemovedTranslation, TranslationResult,
};
pub use engine::{
    EngineConfig, EngineReport, InstallInfo, InvalidationOutcome, MidgardEngine, RmmEngine,
    TranslationEngine, UtopiaEngine,
};
pub use midgard::{MidgardConfig, MidgardMmu, MidgardStats};
pub use pt::{PageTable, PageTableKind, WalkAccessList, WalkOutcome};
pub use pwc::PageWalkCaches;
pub use rmm::{RangeTable, RangeTlb, RmmConfig, RmmMmu};
pub use tlb::{Tlb, TlbConfig, TlbHierarchy, TlbHierarchyConfig, TlbLevel};
pub use utopia_mmu::{UtopiaMmu, UtopiaMmuConfig};
