//! Pins each rule against the fixture corpus: every `*_violation.rs`
//! fixture fires its rule, every `*_clean.rs` fixture stays quiet, and
//! the waiver syntax both suppresses and reports malformed directives.

use std::path::PathBuf;
use std::process::Command;

use vmlint::analyze_files;
use vmlint::rules::{
    Diagnostic, R1_NO_ALLOC, R2_FX_KEYING, R3_DETERMINISM, R4_EPOCH_SAFETY, R5_REPORT_STABILITY,
    R_WAIVER,
};

/// Lints one fixture under a simulation-crate name (so the crate-scoped
/// determinism rule applies, unlike for vmlint's own sources).
fn lint(fixture: &str) -> Vec<Diagnostic> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(fixture);
    analyze_files(&[(path, "core".to_string())]).expect("fixture readable")
}

fn rules_fired(diags: &[Diagnostic]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = diags.iter().map(|d| d.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn r1_violation_fires_with_file_line() {
    let diags = lint("r1_violation.rs");
    assert!(
        diags.iter().any(|d| d.rule == R1_NO_ALLOC && d.line == 11),
        "format! in the step_block closure must fire: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.rule == R1_NO_ALLOC && d.line == 12),
        "Vec::new in the step_block closure must fire: {diags:?}"
    );
    assert!(
        diags[0].file.ends_with("r1_violation.rs"),
        "diagnostics carry the fixture path: {}",
        diags[0].file
    );
}

#[test]
fn r1_clean_is_quiet() {
    assert_eq!(rules_fired(&lint("r1_clean.rs")), Vec::<&str>::new());
}

#[test]
fn r2_violation_fires_for_map_and_set() {
    let diags = lint("r2_violation.rs");
    let lines: Vec<u32> = diags
        .iter()
        .filter(|d| d.rule == R2_FX_KEYING)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        lines,
        vec![4, 5],
        "u64 and VirtAddr keys both fire: {diags:?}"
    );
}

#[test]
fn r2_clean_is_quiet() {
    assert_eq!(rules_fired(&lint("r2_clean.rs")), Vec::<&str>::new());
}

#[test]
fn r3_violation_fires_for_each_source() {
    let diags = lint("r3_violation.rs");
    let whats: Vec<&str> = diags
        .iter()
        .filter(|d| d.rule == R3_DETERMINISM)
        .map(|d| d.message.split('`').nth(1).unwrap_or(""))
        .collect();
    assert!(whats.contains(&"HashMap"), "std HashMap fires: {diags:?}");
    assert!(whats.contains(&"Instant"), "wall clock fires: {diags:?}");
    assert!(
        whats.contains(&"thread::current"),
        "host thread identity fires: {diags:?}"
    );
}

#[test]
fn r3_clean_is_quiet_including_test_modules() {
    assert_eq!(rules_fired(&lint("r3_clean.rs")), Vec::<&str>::new());
}

#[test]
fn r4_violation_fires_directly_and_transitively() {
    let diags = lint("r4_violation.rs");
    let lines: Vec<u32> = diags
        .iter()
        .filter(|d| d.rule == R4_EPOCH_SAFETY)
        .map(|d| d.line)
        .collect();
    assert!(
        lines.contains(&8),
        "shared state named inside run_slice_local fires: {diags:?}"
    );
    assert!(
        lines.contains(&13),
        "shared state named one call below run_slice_local fires: {diags:?}"
    );
}

#[test]
fn r4_clean_is_quiet() {
    assert_eq!(rules_fired(&lint("r4_clean.rs")), Vec::<&str>::new());
}

#[test]
fn r5_violation_fires_on_the_ungated_field() {
    let diags = lint("r5_violation.rs");
    assert!(
        diags
            .iter()
            .any(|d| d.rule == R5_REPORT_STABILITY && d.line == 6),
        "ungated Option field fires at its declaration line: {diags:?}"
    );
}

#[test]
fn r5_clean_is_quiet() {
    assert_eq!(rules_fired(&lint("r5_clean.rs")), Vec::<&str>::new());
}

#[test]
fn justified_waiver_suppresses() {
    assert_eq!(rules_fired(&lint("waiver_ok.rs")), Vec::<&str>::new());
}

#[test]
fn malformed_and_unknown_waivers_are_reported_and_do_not_suppress() {
    let diags = lint("waiver_bad.rs");
    assert!(
        diags.iter().any(|d| d.rule == R_WAIVER && d.line == 5),
        "missing justification is malformed: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.rule == R_WAIVER && d.line == 7),
        "unknown rule id is reported: {diags:?}"
    );
    assert!(
        diags.iter().filter(|d| d.rule == R3_DETERMINISM).count() >= 2,
        "neither bad directive suppresses the determinism findings: {diags:?}"
    );
}

#[test]
fn binary_exits_nonzero_on_each_violation_fixture() {
    for fixture in [
        "r1_violation.rs",
        "r2_violation.rs",
        "r3_violation.rs",
        "r5_violation.rs",
    ] {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(fixture);
        let out = Command::new(env!("CARGO_BIN_EXE_vmlint"))
            .arg(&path)
            .output()
            .expect("vmlint binary runs");
        assert!(
            !out.status.success(),
            "{fixture}: expected a nonzero exit, got {:?}\nstdout: {}",
            out.status,
            String::from_utf8_lossy(&out.stdout)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("{fixture}:")),
            "{fixture}: diagnostics carry file:line: {stdout}"
        );
    }
}
