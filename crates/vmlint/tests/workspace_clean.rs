//! The tier-1 gate: the committed tree must lint clean. A regression
//! here means either a real invariant violation or a new finding that
//! needs a fix (preferred) or a justified waiver.

use std::path::PathBuf;

#[test]
fn committed_workspace_has_no_unwaived_diagnostics() {
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let (diags, nfiles) = vmlint::analyze_workspace(&workspace).expect("workspace readable");
    assert!(
        nfiles > 50,
        "sanity: the walker found the workspace sources ({nfiles} files)"
    );
    assert!(
        diags.is_empty(),
        "the committed tree must lint clean; fix the finding or add a justified \
         `// vmlint: allow(rule, \"why\")` waiver:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
