//! A minimal Rust lexer: just enough to tokenize the workspace's sources
//! for item scanning, and to extract `// vmlint:` waiver directives from
//! line comments.
//!
//! The lexer understands the token classes that matter for the analysis —
//! identifiers, punctuation, string/char/number literals, lifetimes — and
//! correctly skips every form of comment (line, nested block, doc). It is
//! *not* a conforming Rust lexer: what it guarantees is that no token is
//! ever fabricated from the inside of a comment or string literal, which
//! is the property every rule in [`crate::rules`] depends on.

/// The class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `step_block`, `u64`, ...).
    Ident,
    /// A single punctuation character (`{`, `<`, `#`, `:`, ...).
    Punct,
    /// A numeric literal, including suffixes (`0x12_u64`, `1.5`).
    Num,
    /// A string literal of any flavor (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`), distinguished from char literals.
    Lifetime,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// The token's text. For [`TokKind::Str`] this is the literal's
    /// *contents* (delimiters stripped) so rules can inspect e.g.
    /// `skip_serializing_if` predicate names.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Token {
    /// `true` when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// A `// vmlint: ...` directive found in a line comment.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-indexed line the directive comment sits on.
    pub line: u32,
    /// The rule identifier inside `allow(...)`, e.g. `no-alloc-in-hot-path`.
    pub rule: String,
    /// The justification string, mandatory for a well-formed waiver.
    pub justification: Option<String>,
    /// Set when the directive could not be parsed; holds the reason.
    pub malformed: Option<String>,
}

/// The output of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Every `// vmlint:` directive, in source order.
    pub directives: Vec<Directive>,
}

/// Lexes `src` into tokens and waiver directives.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < b.len() && b[end] != b'\n' {
                    end += 1;
                }
                // Doc comments (`///`, `//!`) are documentation, not
                // directives; plain `//` comments may carry a directive.
                let is_doc = matches!(b.get(start), Some(b'/') | Some(b'!'));
                if !is_doc {
                    let text = &src[start..end];
                    if let Some(rest) = text.trim_start().strip_prefix("vmlint:") {
                        out.directives.push(parse_directive(rest.trim(), line));
                    }
                }
                i = end;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let (end, newlines, contents) = scan_raw_string(src, i);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: contents,
                    line,
                });
                line += newlines;
                i = end;
            }
            b'b' if b.get(i + 1) == Some(&b'\'') => {
                let end = scan_char(b, i + 1);
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            b'b' if b.get(i + 1) == Some(&b'"') => {
                let (end, newlines, contents) = scan_string(src, i + 1);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: contents,
                    line,
                });
                line += newlines;
                i = end;
            }
            b'"' => {
                let (end, newlines, contents) = scan_string(src, i);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: contents,
                    line,
                });
                line += newlines;
                i = end;
            }
            b'\'' => {
                // Lifetime or char literal. `'a'` is a char; `'a` (not
                // followed by a closing quote) is a lifetime.
                if is_lifetime(b, i) {
                    let mut end = i + 1;
                    while end < b.len() && (b[end].is_ascii_alphanumeric() || b[end] == b'_') {
                        end += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[i..end].to_string(),
                        line,
                    });
                    i = end;
                } else {
                    let end = scan_char(b, i);
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: src[i..end].to_string(),
                        line,
                    });
                    i = end;
                }
            }
            c if c.is_ascii_digit() => {
                let end = scan_number(b, i);
                out.tokens.push(Token {
                    kind: TokKind::Num,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut end = i + 1;
                while end < b.len() && (b[end].is_ascii_alphanumeric() || b[end] == b'_') {
                    end += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Parses the payload of a `// vmlint:` comment. The only verb is
/// `allow(<rule>, "<justification>")`.
fn parse_directive(rest: &str, line: u32) -> Directive {
    let malformed = |why: &str| Directive {
        line,
        rule: String::new(),
        justification: None,
        malformed: Some(why.to_string()),
    };
    let Some(args) = rest.strip_prefix("allow") else {
        return malformed("expected `allow(<rule>, \"<justification>\")`");
    };
    let args = args.trim();
    let Some(inner) = args.strip_prefix('(').and_then(|a| a.strip_suffix(')')) else {
        return malformed("expected parentheses: `allow(<rule>, \"<justification>\")`");
    };
    let (rule, just) = match inner.split_once(',') {
        Some((r, j)) => (r.trim(), j.trim()),
        None => (inner.trim(), ""),
    };
    if rule.is_empty() {
        return malformed("missing rule id");
    }
    let just = just
        .strip_prefix('"')
        .and_then(|j| j.strip_suffix('"'))
        .map(str::trim)
        .unwrap_or("");
    if just.is_empty() {
        return malformed("a waiver requires a non-empty \"justification\" string");
    }
    Directive {
        line,
        rule: rule.to_string(),
        justification: Some(just.to_string()),
        malformed: None,
    }
}

/// `true` when position `i` starts a raw (or raw-byte) string: `r"`,
/// `r#"`, `br"`, `br#"`.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

/// Scans a raw string starting at `i`; returns (end index, newline count,
/// contents).
fn scan_raw_string(src: &str, i: usize) -> (usize, u32, String) {
    let b = src.as_bytes();
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let start = j;
    let mut newlines = 0u32;
    while j < b.len() {
        if b[j] == b'\n' {
            newlines += 1;
        }
        if b[j] == b'"'
            && b[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return (j + 1 + hashes, newlines, src[start..j].to_string());
        }
        j += 1;
    }
    (j, newlines, src[start..].to_string())
}

/// Scans a regular string starting at the opening quote `i`; returns
/// (end index, newline count, contents).
fn scan_string(src: &str, i: usize) -> (usize, u32, String) {
    let b = src.as_bytes();
    let mut j = i + 1;
    let start = j;
    let mut newlines = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b'"' => return (j + 1, newlines, src[start..j].to_string()),
            _ => j += 1,
        }
    }
    (j, newlines, src[start..].to_string())
}

/// Scans a char literal starting at the opening quote `i`; returns the end
/// index (past the closing quote).
fn scan_char(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// `true` when the quote at `i` starts a lifetime rather than a char
/// literal.
fn is_lifetime(b: &[u8], i: usize) -> bool {
    let Some(&first) = b.get(i + 1) else {
        return false;
    };
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return false; // '\n' etc: a char literal
    }
    // 'static, 'a — a lifetime unless the ident is one char and a quote
    // follows ('a').
    let mut j = i + 2;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    b.get(j) != Some(&b'\'')
}

/// Scans a numeric literal (suffixes and `_` separators included); stops
/// before `..` so ranges lex as two dots.
fn scan_number(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        let c = b[j];
        if c.is_ascii_alphanumeric() || c == b'_' {
            j += 1;
        } else if c == b'.' && b.get(j + 1) != Some(&b'.') && b[j - 1] != b'.' {
            // One decimal point, unless it begins a `..` range. Field/tuple
            // access after a float (`1.0.to_bits()`) is rare enough to
            // ignore: lexing it as one token loses nothing the rules need.
            if b.get(j + 1).is_some_and(|n| n.is_ascii_alphabetic()) {
                break; // `1.max(2)`: method call on an integer literal
            }
            j += 1;
        } else {
            break;
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_tokens() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() /* nested */ still a comment */
            /// doc HashMap
            let s = "format! inside a string";
            let r = r#"Vec::new in a raw string"#;
            let c = 'x';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'y' }").tokens;
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'y'"));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = 2;\n";
        let toks = lex(src).tokens;
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn directives_parse_rule_and_justification() {
        let src = "// vmlint: allow(fx-keying, \"keys are shifted VPNs\")\nlet x = 1;";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 1);
        let d = &lexed.directives[0];
        assert_eq!(d.rule, "fx-keying");
        assert_eq!(d.justification.as_deref(), Some("keys are shifted VPNs"));
        assert!(d.malformed.is_none());
    }

    #[test]
    fn waivers_without_justification_are_malformed() {
        let lexed = lex("// vmlint: allow(determinism)\n");
        assert!(lexed.directives[0].malformed.is_some());
        let lexed = lex("// vmlint: deny(x)\n");
        assert!(lexed.directives[0].malformed.is_some());
    }

    #[test]
    fn numbers_lex_through_ranges_and_methods() {
        let toks = lex("for i in 0..10 { i.max(1.5); }").tokens;
        assert!(toks.iter().any(|t| t.kind == TokKind::Num && t.text == "0"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.5"));
        assert!(toks.iter().any(|t| t.is_ident("max")));
    }
}
