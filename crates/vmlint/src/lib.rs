//! vmlint — the workspace's static-analysis pass.
//!
//! Virtuoso's credibility rests on invariants that otherwise exist only
//! as prose and runtime fences: the zero-allocation steady-state loop,
//! the page/frame-number `FxHashMap` keying rule, the core-private-only
//! parallel epoch phase behind the byte-identical `--threads` contract,
//! and byte-stable report serialization. This crate checks those
//! invariants at review time, before a golden-report diff or a chaos run
//! would catch the regression dynamically.
//!
//! The analyzer is hand-rolled and dependency-free (no `syn`/`quote`) —
//! the build environment has no crates registry, so it lexes and scans
//! Rust source the same way `shims/serde_derive` does. That makes it a
//! *name-level* analysis: no type inference, no macro expansion. Each
//! rule in [`rules`] documents the direction of its approximation and
//! the runtime fence that covers the remainder.
//!
//! Entry points: [`analyze_workspace`] walks every workspace crate's
//! sources and returns the unsuppressed diagnostics; [`analyze_files`]
//! does the same for an explicit file list (used by the fixture tests).
//!
//! ```text
//! cargo run -p vmlint --release -- --workspace
//! ```

#![deny(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod scan;

pub use rules::{run_rules, Diagnostic};
pub use scan::{scan_file, FileScan};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Workspace directories whose sources the pass analyzes: every crate
/// under `crates/`, plus the umbrella crate's own `src/`. `shims/` is
/// vendored third-party surface (not ours to lint) and `fixtures/` holds
/// deliberate violations; neither sits under these roots.
fn source_roots(workspace: &Path) -> io::Result<Vec<(PathBuf, String)>> {
    let mut roots = Vec::new();
    let umbrella = workspace.join("src");
    if umbrella.is_dir() {
        roots.push((umbrella, ".".to_string()));
    }
    let crates = workspace.join("crates");
    let mut entries: Vec<PathBuf> = fs::read_dir(&crates)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for dir in entries {
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        roots.push((src, name));
    }
    Ok(roots)
}

/// Recursively collects `.rs` files under `dir`, sorted for stable
/// diagnostic order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans and checks every workspace source file under `workspace`.
/// Returns the unsuppressed diagnostics, sorted by file and line, and
/// the number of files analyzed.
pub fn analyze_workspace(workspace: &Path) -> io::Result<(Vec<Diagnostic>, usize)> {
    let mut scans = Vec::new();
    for (root, crate_dir) in source_roots(workspace)? {
        let mut files = Vec::new();
        rust_files(&root, &mut files)?;
        for path in files {
            let src = fs::read_to_string(&path)?;
            let display = path.strip_prefix(workspace).unwrap_or(&path).to_path_buf();
            scans.push(scan_file(&display, &crate_dir, &src));
        }
    }
    let n = scans.len();
    Ok((run_rules(&scans), n))
}

/// Scans and checks an explicit list of `(path, crate_dir)` files — the
/// fixture tests use this to lint files outside the workspace roots
/// under a crate name of their choosing (R3 exempts `vmlint` itself, so
/// fixtures pass a simulation-crate name instead).
pub fn analyze_files(files: &[(PathBuf, String)]) -> io::Result<Vec<Diagnostic>> {
    let mut scans = Vec::new();
    for (path, crate_dir) in files {
        let src = fs::read_to_string(path)?;
        scans.push(scan_file(path, crate_dir, &src));
    }
    Ok(run_rules(&scans))
}
