//! The item scanner: turns one file's token stream into the shapes the
//! rules consume — functions with their call/field-access sites, structs
//! with their fields and attributes, `FxHashMap`/`FxHashSet` key
//! declarations, determinism watch-token hits, and waiver coverage.
//!
//! The scanner is deliberately approximate (no type information, no macro
//! expansion): it resolves what a name-level analysis can resolve and
//! leaves the rest to the runtime fences this pass complements (the
//! counting allocator, the golden reports, the coherence fence). The
//! approximations and their direction are documented on each rule in
//! [`crate::rules`].

use crate::lexer::{lex, Directive, TokKind, Token};
use std::path::{Path, PathBuf};

/// What a call site names, as precisely as tokens allow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `foo(...)` — a free-function call.
    Bare(String),
    /// `Qual::name(...)` — the last two path segments of a path call.
    Path(String, String),
    /// `.name(...)` — a method call.
    Method(String),
    /// `name!(...)` — a macro invocation.
    Macro(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What is being called.
    pub callee: Callee,
    /// 1-indexed line of the call.
    pub line: u32,
}

/// One `.field` access inside a function body (not followed by `(`).
#[derive(Debug, Clone)]
pub struct FieldUse {
    /// The field name.
    pub name: String,
    /// 1-indexed line of the access.
    pub line: u32,
}

/// One function (or method) definition.
#[derive(Debug)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` self-type the function is defined on, if any.
    pub impl_type: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// `true` for functions inside `#[cfg(test)]` / `mod tests` regions or
    /// carrying `#[test]` — excluded from the call graph and all rules.
    pub is_test: bool,
    /// Every call site in the body, in order.
    pub calls: Vec<CallSite>,
    /// Every `.field` access in the body.
    pub fields: Vec<FieldUse>,
}

impl FnInfo {
    /// `Type::name` when the function sits in an impl, else `name`.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One named field of a braced struct.
#[derive(Debug)]
pub struct StructField {
    /// Field name.
    pub name: String,
    /// The field's type, tokens joined with spaces (`Option < OomStats >`).
    pub ty: String,
    /// Raw text of each `#[...]` attribute on the field.
    pub attrs: Vec<String>,
    /// 1-indexed line of the field name.
    pub line: u32,
}

/// One struct definition with its outer attributes.
#[derive(Debug)]
pub struct StructInfo {
    /// Struct name.
    pub name: String,
    /// Raw text of each outer `#[...]` attribute (derives included).
    pub attrs: Vec<String>,
    /// Named fields (empty for tuple/unit structs).
    pub fields: Vec<StructField>,
    /// 1-indexed line of the `struct` keyword.
    pub line: u32,
    /// `true` when defined inside a test region.
    pub is_test: bool,
}

impl StructInfo {
    /// `true` when any outer attribute derives `trait_name`.
    pub fn derives(&self, trait_name: &str) -> bool {
        self.attrs
            .iter()
            .any(|a| a.starts_with("derive") && a.contains(trait_name))
    }
}

/// One `FxHashMap<K, _>` / `FxHashSet<K>` type mention.
#[derive(Debug)]
pub struct MapDecl {
    /// `FxHashMap` or `FxHashSet`.
    pub which: &'static str,
    /// The key type, tokens joined with spaces.
    pub key: String,
    /// 1-indexed line.
    pub line: u32,
}

/// One determinism watch-token hit (see [`WATCH_IDENTS`]).
#[derive(Debug)]
pub struct WatchHit {
    /// The offending token (or token sequence, e.g. `thread::current`).
    pub what: String,
    /// 1-indexed line.
    pub line: u32,
}

/// The analysis-ready summary of one source file.
#[derive(Debug)]
pub struct FileScan {
    /// Path the file was read from.
    pub path: PathBuf,
    /// The workspace crate directory the file belongs to (`mmu`, `core`,
    /// `types`, ... or `.` for the umbrella crate's own sources).
    pub crate_dir: String,
    /// Every function definition.
    pub fns: Vec<FnInfo>,
    /// Every struct definition.
    pub structs: Vec<StructInfo>,
    /// Every Fx map/set key declaration outside test regions.
    pub maps: Vec<MapDecl>,
    /// Every determinism watch hit outside test regions.
    pub watch_hits: Vec<WatchHit>,
    /// Well-formed waiver directives with the lines they cover.
    pub waivers: Vec<Waiver>,
    /// Malformed directives: (line, reason).
    pub malformed: Vec<(u32, String)>,
}

/// A resolved waiver: the rule it waives and the source lines it covers
/// (its own line, and the first code line after it).
#[derive(Debug)]
pub struct Waiver {
    /// The waived rule id.
    pub rule: String,
    /// Justification string (validated non-empty by the lexer).
    pub justification: String,
    /// The lines the waiver covers.
    pub lines: [u32; 2],
}

impl FileScan {
    /// `true` when `line` is covered by a waiver for `rule`.
    pub fn waived(&self, rule: &str, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| w.rule == rule && w.lines.contains(&line))
    }
}

/// Identifiers whose bare appearance in a simulation crate violates the
/// determinism rule (R3). `HashMap`/`HashSet` are std's randomly-seeded
/// containers (iteration order varies per process — the `FxHashMap` alias
/// is the sanctioned spelling); the rest are wall-clock and entropy
/// sources.
pub const WATCH_IDENTS: &[&str] = &[
    "HashMap",
    "HashSet",
    "Instant",
    "SystemTime",
    "RandomState",
    "thread_rng",
    "from_entropy",
];

/// Scans one file's source text.
pub fn scan_file(path: &Path, crate_dir: &str, src: &str) -> FileScan {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let mut fs = FileScan {
        path: path.to_path_buf(),
        crate_dir: crate_dir.to_string(),
        fns: Vec::new(),
        structs: Vec::new(),
        maps: Vec::new(),
        watch_hits: Vec::new(),
        waivers: Vec::new(),
        malformed: Vec::new(),
    };
    resolve_directives(&lexed.directives, toks, &mut fs);
    let mut test_ranges: Vec<(usize, usize)> = Vec::new();
    item_pass(toks, &mut fs, &mut test_ranges);
    let in_test = |idx: usize| test_ranges.iter().any(|&(s, e)| idx >= s && idx < e);
    map_pass(toks, &mut fs, &in_test);
    watch_pass(toks, &mut fs, &in_test);
    fs
}

/// Attaches each directive to the lines it covers: its own line and the
/// first following line that holds a token (doc comments and blank lines
/// in between do not break the attachment; attributes do, so waivers go
/// *below* `#[...]` attributes, directly above the item).
fn resolve_directives(directives: &[Directive], toks: &[Token], fs: &mut FileScan) {
    for d in directives {
        if let Some(reason) = &d.malformed {
            fs.malformed.push((d.line, reason.clone()));
            continue;
        }
        let next_line = toks
            .iter()
            .find(|t| t.line > d.line)
            .map(|t| t.line)
            .unwrap_or(d.line);
        fs.waivers.push(Waiver {
            rule: d.rule.clone(),
            justification: d.justification.clone().unwrap_or_default(),
            lines: [d.line, next_line],
        });
    }
}

/// The item-level pass: functions, structs, impl/trait context, test
/// regions.
fn item_pass(toks: &[Token], fs: &mut FileScan, test_ranges: &mut Vec<(usize, usize)>) {
    let mut i = 0usize;
    // Brace scopes; each carries the impl/trait self-type entered with it.
    let mut scopes: Vec<Option<String>> = Vec::new();
    let mut pending_impl: Option<String> = None;
    // Outer attributes seen immediately before the current position.
    let mut attrs: Vec<String> = Vec::new();
    let mut attrs_end = usize::MAX; // token index just past the last attr
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.is_punct('#') => {
                let (group, end, inner) = parse_attr(toks, i);
                if !inner {
                    if attrs_end == i {
                        attrs.push(group);
                    } else {
                        attrs = vec![group];
                    }
                    attrs_end = end;
                }
                i = end;
                continue;
            }
            TokKind::Punct if t.is_punct('{') => {
                scopes.push(pending_impl.take());
                i += 1;
                continue;
            }
            TokKind::Punct if t.is_punct('}') => {
                scopes.pop();
                i += 1;
                continue;
            }
            TokKind::Ident if t.text == "impl" || t.text == "trait" => {
                let (name, brace) = parse_impl_header(toks, i);
                pending_impl = name;
                i = brace;
                continue;
            }
            TokKind::Ident if t.text == "mod" => {
                // `#[cfg(test)] mod tests { ... }`: record the body token
                // range so the map/watch passes can skip it.
                let attrs_apply = attrs_applicable(toks, attrs_end, i);
                let is_test_mod = attrs_apply && attrs.iter().any(|a| is_cfg_test(a))
                    || toks.get(i + 1).is_some_and(|n| n.is_ident("tests"));
                // Only inline bodies (`mod tests {`) define a region;
                // `mod foo;` file declarations have nothing to skip.
                if is_test_mod && toks.get(i + 2).is_some_and(|t| t.is_punct('{')) {
                    let open = i + 2;
                    let close = matching_brace(toks, open);
                    test_ranges.push((open, close));
                    i = close;
                    continue;
                }
                i += 1;
                continue;
            }
            TokKind::Ident if t.text == "struct" => {
                let attrs_apply = attrs_applicable(toks, attrs_end, i);
                let in_test = in_test_scope(test_ranges, i);
                let (info, end) = parse_struct(
                    toks,
                    i,
                    if attrs_apply {
                        attrs.clone()
                    } else {
                        Vec::new()
                    },
                    in_test,
                );
                if let Some(info) = info {
                    fs.structs.push(info);
                }
                i = end;
                continue;
            }
            TokKind::Ident if t.text == "fn" => {
                let attrs_apply = attrs_applicable(toks, attrs_end, i);
                let fn_is_test = attrs_apply
                    && attrs
                        .iter()
                        .any(|a| a == "test" || a.starts_with("test") || is_cfg_test(a));
                let impl_type = scopes.iter().rev().flatten().next().cloned();
                let in_test = in_test_scope(test_ranges, i) || fn_is_test;
                let end = parse_fn(toks, i, impl_type, in_test, fs, test_ranges);
                if fn_is_test {
                    test_ranges.push((i, end));
                }
                i = end;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
}

/// `true` when token index `i` falls inside a recorded test range.
fn in_test_scope(test_ranges: &[(usize, usize)], i: usize) -> bool {
    test_ranges.iter().any(|&(s, e)| i >= s && i < e)
}

/// `true` when attributes ending at token `attrs_end` still apply to the
/// item keyword at `item_idx` — only visibility-like modifiers may sit in
/// between (`pub`, `pub(crate)`, `unsafe`, `const`, `async`, `extern "C"`).
fn attrs_applicable(toks: &[Token], attrs_end: usize, item_idx: usize) -> bool {
    if attrs_end > item_idx {
        return false;
    }
    toks[attrs_end..item_idx].iter().all(|t| {
        matches!(t.kind, TokKind::Str)
            || t.is_punct('(')
            || t.is_punct(')')
            || matches!(
                t.text.as_str(),
                "pub" | "crate" | "super" | "self" | "in" | "unsafe" | "const" | "async" | "extern"
            )
    })
}

/// `true` for an attribute text like `cfg ( test )` / `cfg ( all ( test , ... ) )`.
fn is_cfg_test(attr: &str) -> bool {
    attr.starts_with("cfg") && attr.contains("test")
}

/// Parses `#[...]` (or `#![...]`) starting at the `#`; returns (joined
/// inner text, index past `]`, was_inner).
fn parse_attr(toks: &[Token], i: usize) -> (String, usize, bool) {
    let mut j = i + 1;
    let inner = toks.get(j).is_some_and(|t| t.is_punct('!'));
    if inner {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct('[')) {
        return (String::new(), i + 1, true); // stray `#`, e.g. in a raw string edge
    }
    let mut depth = 0usize;
    let start = j + 1;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                let text = join_tokens(&toks[start..j]);
                return (text, j + 1, inner);
            }
        }
        j += 1;
    }
    (String::new(), j, inner)
}

/// Joins token texts with single spaces (string literals keep their
/// contents, which is all the attribute checks need).
fn join_tokens(toks: &[Token]) -> String {
    let mut s = String::new();
    for t in toks {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&t.text);
    }
    s
}

/// Parses an `impl`/`trait` header starting at its keyword: returns the
/// self-type name (last path segment before the body, after `for` if
/// present) and the index of the opening `{`.
fn parse_impl_header(toks: &[Token], i: usize) -> (Option<String>, usize) {
    let mut j = i + 1;
    // Skip `<...>` generic parameters.
    if toks.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angles(toks, j);
    }
    let mut last: Option<String> = None;
    let mut angle = 0i32;
    let mut paren = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') && angle <= 0 && paren <= 0 {
            return (last, j);
        }
        if t.is_punct(';') && angle <= 0 && paren <= 0 {
            return (None, j); // `impl Foo;`-style oddity: bail out
        }
        match t.kind {
            TokKind::Punct => match t.text.as_bytes()[0] {
                b'<' => angle += 1,
                b'>' => {
                    // `->` in a trait bound (`Fn() -> T`): not a close.
                    if !toks[j - 1].is_punct('-') {
                        angle -= 1;
                    }
                }
                b'(' => paren += 1,
                b')' => paren -= 1,
                _ => {}
            },
            TokKind::Ident if angle == 0 && paren == 0 => match t.text.as_str() {
                "for" => last = None,
                "where" => {
                    // Nothing after `where` names the self type.
                    while j < toks.len() && !toks[j].is_punct('{') {
                        j += 1;
                    }
                    return (last, j);
                }
                "dyn" | "mut" | "const" | "unsafe" => {}
                name => last = Some(name.to_string()),
            },
            _ => {}
        }
        j += 1;
    }
    (last, j)
}

/// Skips a balanced `<...>` group starting at the `<`; returns the index
/// past the matching `>`.
fn skip_angles(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct('<') {
            depth += 1;
        } else if toks[j].is_punct('>') && !toks[j - 1].is_punct('-') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Finds the `}` matching the `{` at `open`; returns its index (or the end
/// of the stream).
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    j
}

/// Parses a struct definition starting at the `struct` keyword; returns
/// the info (None for tuple/unit structs, which no rule inspects) and the
/// index past the definition.
fn parse_struct(
    toks: &[Token],
    i: usize,
    attrs: Vec<String>,
    is_test: bool,
) -> (Option<StructInfo>, usize) {
    let Some(name_tok) = toks.get(i + 1) else {
        return (None, i + 1);
    };
    if name_tok.kind != TokKind::Ident {
        return (None, i + 1);
    }
    let mut info = StructInfo {
        name: name_tok.text.clone(),
        attrs,
        fields: Vec::new(),
        line: toks[i].line,
        is_test,
    };
    let mut j = i + 2;
    if toks.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angles(toks, j);
    }
    // Skip a `where` clause; stop at `{`, `;` or `(`.
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            break;
        }
        if t.is_punct(';') {
            return (Some(info), j + 1); // unit struct
        }
        if t.is_punct('(') {
            // Tuple struct: skip the parenthesized list and trailing `;`.
            let mut depth = 0usize;
            while j < toks.len() {
                if toks[j].is_punct('(') {
                    depth += 1;
                } else if toks[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            return (Some(info), j + 1);
        }
        j += 1;
    }
    let close = matching_brace(toks, j);
    j += 1; // into the body
    let mut field_attrs: Vec<String> = Vec::new();
    while j < close {
        let t = &toks[j];
        if t.is_punct('#') {
            let (group, end, inner) = parse_attr(toks, j);
            if !inner {
                field_attrs.push(group);
            }
            j = end;
            continue;
        }
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "pub" | "crate" | "super" | "in") {
            j += 1;
            continue;
        }
        if t.is_punct('(') {
            // `pub(crate)` visibility group.
            while j < close && !toks[j].is_punct(')') {
                j += 1;
            }
            j += 1;
            continue;
        }
        if t.kind == TokKind::Ident && toks.get(j + 1).is_some_and(|n| n.is_punct(':')) {
            let fname = t.text.clone();
            let fline = t.line;
            let ty_start = j + 2;
            let mut depth = 0i32;
            let mut k = ty_start;
            while k < close {
                let tt = &toks[k];
                if tt.is_punct('<') || tt.is_punct('(') || tt.is_punct('[') {
                    depth += 1;
                } else if tt.is_punct(')') || tt.is_punct(']') {
                    depth -= 1;
                } else if tt.is_punct('>') && !toks[k - 1].is_punct('-') {
                    depth -= 1;
                } else if tt.is_punct(',') && depth == 0 {
                    break;
                }
                k += 1;
            }
            info.fields.push(StructField {
                name: fname,
                ty: join_tokens(&toks[ty_start..k]),
                attrs: std::mem::take(&mut field_attrs),
                line: fline,
            });
            j = k + 1;
            continue;
        }
        j += 1;
    }
    (Some(info), close + 1)
}

/// Parses a function starting at the `fn` keyword: records it into `fs`
/// and returns the index past the function (past `;` for bodyless
/// declarations).
fn parse_fn(
    toks: &[Token],
    i: usize,
    impl_type: Option<String>,
    is_test: bool,
    fs: &mut FileScan,
    test_ranges: &mut Vec<(usize, usize)>,
) -> usize {
    let Some(name_tok) = toks.get(i + 1) else {
        return i + 1;
    };
    if name_tok.kind != TokKind::Ident {
        return i + 1; // `fn(` pointer type
    }
    let mut info = FnInfo {
        name: name_tok.text.clone(),
        impl_type,
        line: toks[i].line,
        is_test,
        calls: Vec::new(),
        fields: Vec::new(),
    };
    // Find the body `{` (or `;`) at zero paren/bracket/angle depth.
    let mut j = i + 2;
    let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
    let mut body_open = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes()[0] {
                b'(' => paren += 1,
                b')' => paren -= 1,
                b'[' => bracket += 1,
                b']' => bracket -= 1,
                b'<' => angle += 1,
                b'>' => {
                    if !toks[j - 1].is_punct('-') {
                        angle -= 1;
                    }
                }
                b'{' if paren == 0 && bracket == 0 && angle <= 0 => {
                    body_open = Some(j);
                    break;
                }
                b';' if paren == 0 && bracket == 0 && angle <= 0 => {
                    fs.fns.push(info);
                    return j + 1;
                }
                _ => {}
            }
        }
        j += 1;
    }
    let Some(open) = body_open else {
        fs.fns.push(info);
        return j;
    };
    let close = matching_brace(toks, open);
    scan_body(toks, open + 1, close, &mut info, fs, test_ranges);
    fs.fns.push(info);
    close + 1
}

/// Scans a function body's tokens in `[start, close)`, recording call
/// sites and field accesses. Nested `fn` items are parsed recursively and
/// recorded as their own functions.
fn scan_body(
    toks: &[Token],
    start: usize,
    close: usize,
    info: &mut FnInfo,
    fs: &mut FileScan,
    test_ranges: &mut Vec<(usize, usize)>,
) {
    let mut j = start;
    while j < close {
        let t = &toks[j];
        match t.kind {
            TokKind::Punct if t.is_punct('#') => {
                let (_, end, _) = parse_attr(toks, j);
                j = end;
                continue;
            }
            TokKind::Punct if t.is_punct('.') => {
                // `.name(...)`: method call; `.name::<T>(...)`: turbofish
                // method call; `.name` otherwise: field access.
                if let Some(n) = toks.get(j + 1) {
                    if n.kind == TokKind::Ident {
                        let after = j + 2;
                        let (is_call, next) = call_paren(toks, after);
                        if is_call {
                            info.calls.push(CallSite {
                                callee: Callee::Method(n.text.clone()),
                                line: n.line,
                            });
                        } else if n.text != "await" {
                            info.fields.push(FieldUse {
                                name: n.text.clone(),
                                line: n.line,
                            });
                        }
                        j = next.max(j + 2);
                        continue;
                    }
                }
                j += 1;
                continue;
            }
            TokKind::Ident if t.text == "fn" => {
                // Nested function: its own call-graph node.
                let impl_type = None;
                let end = parse_fn(toks, j, impl_type, info.is_test, fs, test_ranges);
                j = end;
                continue;
            }
            TokKind::Ident => {
                if let Some(n) = toks.get(j + 1) {
                    if n.is_punct('!') {
                        // Macro invocation; its arguments keep scanning
                        // normally (calls inside `assert!` args still
                        // count).
                        info.calls.push(CallSite {
                            callee: Callee::Macro(t.text.clone()),
                            line: t.line,
                        });
                        j += 2;
                        continue;
                    }
                    let (is_call, _next) = call_paren(toks, j + 1);
                    if is_call {
                        // Bare or path call? Look back for `::`.
                        let callee = if j >= 2
                            && toks[j - 1].is_punct(':')
                            && toks[j - 2].is_punct(':')
                            && j >= 3
                            && toks[j - 3].kind == TokKind::Ident
                        {
                            Callee::Path(toks[j - 3].text.clone(), t.text.clone())
                        } else {
                            Callee::Bare(t.text.clone())
                        };
                        info.calls.push(CallSite {
                            callee,
                            line: t.line,
                        });
                    }
                }
                j += 1;
                continue;
            }
            _ => {
                j += 1;
                continue;
            }
        }
    }
}

/// Starting at token `i` (just after an identifier), decides whether a
/// call's argument list begins here: `(` directly, or a `::<...>(`
/// turbofish. Returns (is_call, index of the `(` when a call).
fn call_paren(toks: &[Token], i: usize) -> (bool, usize) {
    match toks.get(i) {
        Some(t) if t.is_punct('(') => (true, i),
        Some(t)
            if t.is_punct(':')
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('<')) =>
        {
            let after = skip_angles(toks, i + 2);
            if toks.get(after).is_some_and(|t| t.is_punct('(')) {
                (true, after)
            } else {
                (false, i)
            }
        }
        _ => (false, i),
    }
}

/// The Fx-keying pass: records the key type of every `FxHashMap<K, _>` /
/// `FxHashSet<K>` mention outside test regions.
fn map_pass(toks: &[Token], fs: &mut FileScan, in_test: &dyn Fn(usize) -> bool) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let which = match t.text.as_str() {
            "FxHashMap" => "FxHashMap",
            "FxHashSet" => "FxHashSet",
            _ => continue,
        };
        if in_test(i) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('<')) {
            continue; // `FxHashMap::default()` etc. — no key information
        }
        // Collect the key type: tokens until a top-level `,` (map) or the
        // closing `>` (set).
        let mut depth = 0i32;
        let mut j = i + 2;
        let start = j;
        while j < toks.len() {
            let tt = &toks[j];
            if tt.is_punct('<') || tt.is_punct('(') || tt.is_punct('[') {
                depth += 1;
            } else if tt.is_punct(')') || tt.is_punct(']') {
                depth -= 1;
            } else if tt.is_punct('>') && !toks[j - 1].is_punct('-') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if tt.is_punct(',') && depth == 0 {
                break;
            }
            j += 1;
        }
        fs.maps.push(MapDecl {
            which,
            key: join_tokens(&toks[start..j]),
            line: t.line,
        });
    }
}

/// The determinism pass: records watch-token hits outside test regions.
fn watch_pass(toks: &[Token], fs: &mut FileScan, in_test: &dyn Fn(usize) -> bool) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(i) {
            continue;
        }
        if WATCH_IDENTS.contains(&t.text.as_str()) {
            fs.watch_hits.push(WatchHit {
                what: t.text.clone(),
                line: t.line,
            });
        } else if t.text == "thread"
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("current"))
        {
            fs.watch_hits.push(WatchHit {
                what: "thread::current".to_string(),
                line: t.line,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> FileScan {
        scan_file(Path::new("test.rs"), "testcrate", src)
    }

    #[test]
    fn functions_and_impl_context_are_recorded() {
        let fs = scan(
            "impl System {\n fn step_block(&mut self) { self.memory_access(); }\n}\n\
             fn free_helper() {}\n",
        );
        let names: Vec<String> = fs.fns.iter().map(|f| f.qualified()).collect();
        assert!(names.contains(&"System::step_block".to_string()));
        assert!(names.contains(&"free_helper".to_string()));
        let sb = fs.fns.iter().find(|f| f.name == "step_block").unwrap();
        assert!(sb
            .calls
            .iter()
            .any(|c| c.callee == Callee::Method("memory_access".to_string())));
    }

    #[test]
    fn trait_impls_take_the_self_type_after_for() {
        let fs = scan("impl TraceSource for ReplayFront<'_> {\n fn next_instruction(&mut self) -> Option<u64> { None }\n}\n");
        let f = &fs.fns[0];
        assert_eq!(f.impl_type.as_deref(), Some("ReplayFront"));
    }

    #[test]
    fn calls_classify_bare_path_method_macro() {
        let fs = scan(
            "fn f() { helper(); Vec::new(); x.push(1); format!(\"{}\", 1); \
             it.collect::<Vec<_>>(); }",
        );
        let calls = &fs.fns[0].calls;
        let has = |callee: Callee| calls.iter().any(|c| c.callee == callee);
        assert!(has(Callee::Bare("helper".into())));
        assert!(has(Callee::Path("Vec".into(), "new".into())));
        assert!(has(Callee::Method("push".into())));
        assert!(has(Callee::Macro("format".into())));
        assert!(has(Callee::Method("collect".into())));
    }

    #[test]
    fn field_accesses_are_distinguished_from_method_calls() {
        let fs = scan("fn f(s: &System) { let a = s.os; s.dram.access(); }");
        let fields: Vec<&str> = fs.fns[0].fields.iter().map(|f| f.name.as_str()).collect();
        assert!(fields.contains(&"os"));
        assert!(fields.contains(&"dram"));
        assert!(!fields.contains(&"access"));
    }

    #[test]
    fn struct_fields_carry_attrs_and_types() {
        let fs = scan(
            "#[derive(Serialize)]\npub struct FooReport {\n pub a: u64,\n \
             #[serde(skip_serializing_if = \"Option::is_none\")]\n pub b: Option<OomStats>,\n \
             pub c: Option<u64>,\n}\n",
        );
        let s = &fs.structs[0];
        assert!(s.derives("Serialize"));
        assert_eq!(s.fields.len(), 3);
        assert!(s.fields[1].attrs[0].contains("skip_serializing_if"));
        assert!(s.fields[2].ty.starts_with("Option"));
        assert!(s.fields[2].attrs.is_empty());
    }

    #[test]
    fn map_keys_are_extracted() {
        let fs = scan(
            "struct S { a: FxHashMap<u64, Mapping>, b: FxHashMap<(u16, u64), u32>, \
             c: FxHashSet<Vpn> }",
        );
        let keys: Vec<&str> = fs.maps.iter().map(|m| m.key.as_str()).collect();
        assert_eq!(keys, vec!["u64", "( u16 , u64 )", "Vpn"]);
    }

    #[test]
    fn watch_hits_skip_test_modules() {
        let fs = scan(
            "use std::time::Instant;\n#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n}\n",
        );
        let hits: Vec<&str> = fs.watch_hits.iter().map(|h| h.what.as_str()).collect();
        assert_eq!(hits, vec!["Instant"]);
    }

    #[test]
    fn waivers_cover_their_line_and_the_next_code_line() {
        let fs = scan(
            "// vmlint: allow(determinism, \"defining site of the Fx alias\")\n\
             use std::collections::HashMap;\nuse std::time::Instant;\n",
        );
        assert!(fs.waived("determinism", 2));
        assert!(!fs.waived("determinism", 3));
        assert!(fs.malformed.is_empty());
    }

    #[test]
    fn nested_fns_are_their_own_nodes() {
        let fs = scan("fn outer() { fn inner() { format!(\"x\"); } inner(); }");
        assert_eq!(fs.fns.len(), 2);
        let inner = fs.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(inner
            .calls
            .iter()
            .any(|c| c.callee == Callee::Macro("format".into())));
    }
}
