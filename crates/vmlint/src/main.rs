//! The `vmlint` binary: `cargo run -p vmlint --release -- --workspace`.
//!
//! Exit status is 0 when no unsuppressed diagnostics were found and 1
//! otherwise (2 for usage/IO errors), so CI can gate on it directly.

#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use vmlint::rules::ALL_RULES;

fn usage() -> ExitCode {
    eprintln!(
        "usage: vmlint [--workspace] [--root <dir>] [<file.rs> ...]\n\
         \n\
         --workspace     lint every workspace crate (default when no files given)\n\
         --root <dir>    workspace root (default: current directory)\n\
         --list-rules    print the rule ids and exit\n\
         <file.rs>       lint explicit files (crate dir inferred from the path)\n\
         \n\
         Waive a finding with a justified directive on the line above it:\n\
         // vmlint: allow(<rule>, \"why this is sound\")"
    );
    ExitCode::from(2)
}

/// Infers the workspace crate directory for an explicitly given file, so
/// `vmlint crates/mmu/src/engine.rs` applies the same crate-scoped rules
/// as a workspace run. Fixture files lint as a simulation crate (that is
/// what they exercise — vmlint's own crate is exempt from the simulation
/// rules); files outside `crates/` lint as the umbrella crate (`.`).
fn infer_crate_dir(path: &std::path::Path) -> String {
    let comps: Vec<String> = path
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    if comps.iter().any(|c| c == "fixtures") {
        return "fixture".to_string();
    }
    comps
        .iter()
        .position(|c| c == "crates")
        .and_then(|i| comps.get(i + 1).cloned())
        .unwrap_or_else(|| ".".to_string())
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--list-rules" => {
                for rule in ALL_RULES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(),
            _ if arg.starts_with('-') => return usage(),
            _ => files.push(PathBuf::from(arg)),
        }
    }

    let result = if files.is_empty() {
        vmlint::analyze_workspace(&root)
    } else {
        let list: Vec<(PathBuf, String)> = files
            .into_iter()
            .map(|f| {
                let dir = infer_crate_dir(&f);
                (f, dir)
            })
            .collect();
        let n = list.len();
        vmlint::analyze_files(&list).map(|d| (d, n))
    };

    let (diags, nfiles) = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vmlint: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("vmlint: {nfiles} files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "vmlint: {} diagnostic{} in {nfiles} files",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
        ExitCode::FAILURE
    }
}
