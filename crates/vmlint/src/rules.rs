//! The five rule families and the name-level call graph they run on.
//!
//! Every rule is the *static twin* of a runtime fence the workspace
//! already carries:
//!
//! | rule | invariant | runtime twin |
//! |------|-----------|--------------|
//! | `no-alloc-in-hot-path` (R1) | the steady-state loop allocates nothing | the counting allocator in `tests/alloc_free_hot_path.rs` |
//! | `fx-keying` (R2) | Fx maps key by page/frame *numbers*, never raw addresses | the Utopia simspeed cell (PR 7's measured cliff) |
//! | `determinism` (R3) | no wall clocks, entropy or randomly-seeded containers in simulation crates | byte-identical golden reports |
//! | `epoch-safety` (R4) | the parallel epoch phase touches core-private state only | the `--threads` differential suites |
//! | `report-stability` (R5) | optional report sections serialize only when present | golden-report byte comparison |
//!
//! Violations are waivable with `// vmlint: allow(<rule>, "<why>")` placed
//! directly above (or trailing on) the offending line; a waiver on the
//! `fn` line waives the whole function and, for the reachability rules R1
//! and R4, stops traversal through it — that is how cold slow paths
//! (fault service, housekeeping) are cut out of the hot-path closure.

use crate::scan::{Callee, FileScan, FnInfo};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// R1: functions reachable from the hot-path roots may not allocate.
pub const R1_NO_ALLOC: &str = "no-alloc-in-hot-path";
/// R2: Fx maps/sets may not key by raw addresses or unshifted integers.
pub const R2_FX_KEYING: &str = "fx-keying";
/// R3: no nondeterminism sources in simulation crates.
pub const R3_DETERMINISM: &str = "determinism";
/// R4: the parallel epoch phase touches core-private state only.
pub const R4_EPOCH_SAFETY: &str = "epoch-safety";
/// R5: optional report fields must be gated with `skip_serializing_if`.
pub const R5_REPORT_STABILITY: &str = "report-stability";
/// Meta-rule for malformed or unknown waiver directives (not waivable).
pub const R_WAIVER: &str = "waiver";

/// Every real rule id, for waiver validation and `--list-rules`.
pub const ALL_RULES: &[&str] = &[
    R1_NO_ALLOC,
    R2_FX_KEYING,
    R3_DETERMINISM,
    R4_EPOCH_SAFETY,
    R5_REPORT_STABILITY,
];

/// The hot-path roots of R1: `(fn name, required impl type)`.
/// `System::step_block` is the batched steady-state loop,
/// `CoreState::run_slice_local` the parallel epoch phase, and
/// `Mmu::translate` the translation frontend every engine composes with.
const R1_ROOTS: &[(&str, Option<&str>)] = &[
    ("step_block", None),
    ("run_slice_local", None),
    ("translate", Some("Mmu")),
];

/// The epoch-safety root of R4.
const R4_ROOTS: &[(&str, Option<&str>)] = &[("run_slice_local", None)];

/// `System` fields that hold shared machine state: the parallel epoch
/// phase must go through the `SliceLog` instead.
const R4_SHARED_FIELDS: &[&str] = &["os", "dram", "caches", "functional", "streams", "ipi"];

/// Allocating macros (R1).
const R1_MACROS: &[&str] = &["format", "vec", "println", "eprintln", "print", "eprint"];

/// Allocating associated-function calls (R1), as `(qualifier, name)`.
const R1_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("VecDeque", "new"),
    ("VecDeque", "with_capacity"),
    ("Box", "new"),
    ("Rc", "new"),
    ("Arc", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];

/// Allocating method names (R1) — flagged only when the call resolves to
/// no workspace function, i.e. when it can only be a std-library method.
/// (A `.push(..)` that resolves to `FixedVec::push` is analyzed
/// transitively instead; the counting allocator remains the dynamic
/// backstop for growth hiding behind such aliases.)
const R1_METHODS: &[&str] = &[
    "to_string",
    "to_owned",
    "to_vec",
    "collect",
    "push",
    "push_str",
    "insert",
    "extend",
    "append",
    "reserve",
    "resize",
    "with_capacity",
    "into_boxed_slice",
];

/// Key-type component tokens R2 rejects: raw address newtypes and
/// unshifted integer types (a `u64` key *may* be a page number — the
/// waiver's justification string is where that claim is recorded).
const R2_BAD_KEY_TOKENS: &[&str] = &["u64", "usize", "VirtAddr", "PhysAddr"];

/// Crate directories exempt from R3: the bench harness measures wall
/// time on purpose, and vmlint is host tooling.
const R3_EXEMPT_CRATES: &[&str] = &["bench", "vmlint"];

/// Crate directories excluded from the simulation call graph (R1/R4):
/// host tooling shares method names with simulation code (`chain`,
/// `entries`, ...) and the name-level resolver would conflate them.
const GRAPH_EXEMPT_CRATES: &[&str] = &["vmlint", "bench"];

/// One `file:line` diagnostic.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// File the violation is in.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// The violated rule id.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A function's position in the workspace-wide function table.
type FnId = usize;

/// The name-level call graph over every scanned function.
struct Graph<'a> {
    /// `(owning file, function)` for every non-test function.
    fns: Vec<(&'a FileScan, &'a FnInfo)>,
    /// Name → ids, methods included.
    by_name: BTreeMap<&'a str, Vec<FnId>>,
    /// `Type::name` → ids.
    by_qual: BTreeMap<String, Vec<FnId>>,
    /// Name → ids of free functions only.
    free_by_name: BTreeMap<&'a str, Vec<FnId>>,
}

impl<'a> Graph<'a> {
    fn build(files: &'a [FileScan]) -> Self {
        let mut g = Graph {
            fns: Vec::new(),
            by_name: BTreeMap::new(),
            by_qual: BTreeMap::new(),
            free_by_name: BTreeMap::new(),
        };
        for fs in files {
            if GRAPH_EXEMPT_CRATES.contains(&fs.crate_dir.as_str()) {
                continue;
            }
            for f in &fs.fns {
                if f.is_test {
                    continue;
                }
                let id = g.fns.len();
                g.fns.push((fs, f));
                g.by_name.entry(&f.name).or_default().push(id);
                if let Some(t) = &f.impl_type {
                    g.by_qual
                        .entry(format!("{t}::{}", f.name))
                        .or_default()
                        .push(id);
                } else {
                    g.free_by_name.entry(&f.name).or_default().push(id);
                }
            }
        }
        g
    }

    /// Resolves one call site from `caller` to workspace function ids.
    /// Name-level and deliberately over-approximate for methods (every
    /// function of that name, any type) — an unresolvable call returns
    /// empty, which is what lets R1 classify it as a std-library call.
    fn resolve(&self, caller: FnId, callee: &Callee) -> Vec<FnId> {
        match callee {
            Callee::Macro(_) => Vec::new(),
            Callee::Method(n) => self.by_name.get(n.as_str()).cloned().unwrap_or_default(),
            Callee::Bare(n) => self
                .free_by_name
                .get(n.as_str())
                .cloned()
                .unwrap_or_default(),
            Callee::Path(q, n) => {
                let qual = if q == "Self" {
                    match &self.fns[caller].1.impl_type {
                        Some(t) => format!("{t}::{n}"),
                        None => {
                            return self
                                .free_by_name
                                .get(n.as_str())
                                .cloned()
                                .unwrap_or_default()
                        }
                    }
                } else {
                    format!("{q}::{n}")
                };
                match self.by_qual.get(&qual) {
                    Some(ids) => ids.clone(),
                    // An unknown qualifier usually names a std or aliased
                    // type (`WalkAccessList::new`); fall back to free
                    // functions of that name, not to every method.
                    None => self
                        .free_by_name
                        .get(n.as_str())
                        .cloned()
                        .unwrap_or_default(),
                }
            }
        }
    }

    /// BFS from `roots`, not traversing functions waived for `rule`.
    /// Returns each reached id with its BFS parent (roots map to None).
    fn reach(&self, roots: &[FnId], rule: &str) -> BTreeMap<FnId, Option<FnId>> {
        let mut parents: BTreeMap<FnId, Option<FnId>> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &r in roots {
            if self.fn_waived(r, rule) {
                continue;
            }
            parents.insert(r, None);
            queue.push_back(r);
        }
        while let Some(id) = queue.pop_front() {
            let (_, f) = self.fns[id];
            for call in &f.calls {
                for target in self.resolve(id, &call.callee) {
                    if parents.contains_key(&target) || self.fn_waived(target, rule) {
                        continue;
                    }
                    parents.insert(target, Some(id));
                    queue.push_back(target);
                }
            }
        }
        parents
    }

    /// `true` when the function's `fn` line carries a waiver for `rule`.
    fn fn_waived(&self, id: FnId, rule: &str) -> bool {
        let (fs, f) = self.fns[id];
        fs.waived(rule, f.line)
    }

    /// Renders the BFS chain from a root down to `id`.
    fn chain(&self, parents: &BTreeMap<FnId, Option<FnId>>, id: FnId) -> String {
        let mut names = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            names.push(self.fns[c].1.qualified());
            cur = parents.get(&c).copied().flatten();
            if names.len() > 6 {
                names.push("…".to_string());
                break;
            }
        }
        names.reverse();
        names.join(" → ")
    }
}

/// Runs every rule over the scanned files; returns unsuppressed
/// diagnostics sorted by file and line.
pub fn run_rules(files: &[FileScan]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_waiver_syntax(files, &mut diags);
    let graph = Graph::build(files);
    check_r1(&graph, &mut diags);
    check_r2(files, &mut diags);
    check_r3(files, &mut diags);
    check_r4(&graph, &mut diags);
    check_r5(files, &mut diags);
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

/// Malformed directives and waivers naming unknown rules.
fn check_waiver_syntax(files: &[FileScan], diags: &mut Vec<Diagnostic>) {
    for fs in files {
        for (line, reason) in &fs.malformed {
            diags.push(Diagnostic {
                file: fs.path.display().to_string(),
                line: *line,
                rule: R_WAIVER,
                message: format!("malformed vmlint directive: {reason}"),
            });
        }
        for w in &fs.waivers {
            if !ALL_RULES.contains(&w.rule.as_str()) {
                diags.push(Diagnostic {
                    file: fs.path.display().to_string(),
                    line: w.lines[0],
                    rule: R_WAIVER,
                    message: format!(
                        "waiver names unknown rule `{}` (known: {})",
                        w.rule,
                        ALL_RULES.join(", ")
                    ),
                });
            }
        }
    }
}

/// Resolves the root set for a reachability rule.
fn root_ids(graph: &Graph<'_>, roots: &[(&str, Option<&str>)]) -> Vec<FnId> {
    let mut ids = Vec::new();
    for (id, (_, f)) in graph.fns.iter().enumerate() {
        if roots.iter().any(|(name, ty)| {
            f.name == *name && ty.map_or(true, |t| f.impl_type.as_deref() == Some(t))
        }) {
            ids.push(id);
        }
    }
    ids
}

/// R1: no allocation in the hot-path closure.
fn check_r1(graph: &Graph<'_>, diags: &mut Vec<Diagnostic>) {
    let roots = root_ids(graph, R1_ROOTS);
    let parents = graph.reach(&roots, R1_NO_ALLOC);
    for (&id, _) in &parents {
        let (fs, f) = graph.fns[id];
        for call in &f.calls {
            let offense = match &call.callee {
                Callee::Macro(m) if R1_MACROS.contains(&m.as_str()) => Some(format!("`{m}!`")),
                Callee::Path(q, n) if R1_PATHS.contains(&(q.as_str(), n.as_str())) => {
                    Some(format!("`{q}::{n}`"))
                }
                Callee::Method(n)
                    if R1_METHODS.contains(&n.as_str())
                        && graph.resolve(id, &call.callee).is_empty() =>
                {
                    Some(format!("`.{n}(..)`"))
                }
                _ => None,
            };
            let Some(what) = offense else { continue };
            if fs.waived(R1_NO_ALLOC, call.line) {
                continue;
            }
            diags.push(Diagnostic {
                file: fs.path.display().to_string(),
                line: call.line,
                rule: R1_NO_ALLOC,
                message: format!(
                    "{what} allocates inside the hot path ({}); use FixedVec/pre-sized state, \
                     or waive with a justification if the call is provably cold or alloc-free",
                    graph.chain(&parents, id)
                ),
            });
        }
    }
}

/// R2: Fx maps/sets must not key by raw addresses.
fn check_r2(files: &[FileScan], diags: &mut Vec<Diagnostic>) {
    for fs in files {
        for m in &fs.maps {
            let bad = m
                .key
                .split_whitespace()
                .find(|tok| R2_BAD_KEY_TOKENS.contains(tok));
            let Some(bad) = bad else { continue };
            if fs.waived(R2_FX_KEYING, m.line) {
                continue;
            }
            diags.push(Diagnostic {
                file: fs.path.display().to_string(),
                line: m.line,
                rule: R2_FX_KEYING,
                message: format!(
                    "{}<{}> keys by `{bad}`: page-aligned keys collapse Fx/hashbrown buckets \
                     into probe chains (PR 7). Key by a shifted page/frame number or a newtype; \
                     if the key already is one, waive with a justification saying where it is \
                     shifted",
                    m.which, m.key
                ),
            });
        }
    }
}

/// R3: no nondeterminism sources in simulation crates.
fn check_r3(files: &[FileScan], diags: &mut Vec<Diagnostic>) {
    for fs in files {
        if R3_EXEMPT_CRATES.contains(&fs.crate_dir.as_str()) {
            continue;
        }
        for hit in &fs.watch_hits {
            if fs.waived(R3_DETERMINISM, hit.line) {
                continue;
            }
            let why = match hit.what.as_str() {
                "HashMap" | "HashSet" | "RandomState" => {
                    "std's randomly seeded hasher makes iteration order differ between \
                     processes; use the FxHashMap/FxHashSet aliases (or a BTreeMap when \
                     iteration order is observable)"
                }
                "Instant" | "SystemTime" => {
                    "wall-clock time leaks host timing into simulation state; derive times \
                     from simulated cycles"
                }
                "thread::current" => {
                    "host thread identity must not influence simulation state (the --threads \
                     contract requires byte-identical reports)"
                }
                _ => {
                    "entropy sources break seeded reproducibility; construct DetRng from a \
                      configured seed"
                }
            };
            diags.push(Diagnostic {
                file: fs.path.display().to_string(),
                line: hit.line,
                rule: R3_DETERMINISM,
                message: format!("`{}` in a simulation crate: {why}", hit.what),
            });
        }
    }
}

/// R4: the parallel epoch phase touches core-private state only.
fn check_r4(graph: &Graph<'_>, diags: &mut Vec<Diagnostic>) {
    let roots = root_ids(graph, R4_ROOTS);
    let parents = graph.reach(&roots, R4_EPOCH_SAFETY);
    for (&id, _) in &parents {
        let (fs, f) = graph.fns[id];
        for field in &f.fields {
            if !R4_SHARED_FIELDS.contains(&field.name.as_str()) {
                continue;
            }
            if fs.waived(R4_EPOCH_SAFETY, field.line) {
                continue;
            }
            diags.push(Diagnostic {
                file: fs.path.display().to_string(),
                line: field.line,
                rule: R4_EPOCH_SAFETY,
                message: format!(
                    "`.{}` names shared machine state inside the parallel epoch phase ({}); \
                     core-local code must log the access in the SliceLog and let the serial \
                     barrier replay it",
                    field.name,
                    graph.chain(&parents, id)
                ),
            });
        }
    }
}

/// R5: `Option` fields of serialized report/stats structs must be gated.
fn check_r5(files: &[FileScan], diags: &mut Vec<Diagnostic>) {
    for fs in files {
        for s in &fs.structs {
            if s.is_test
                || !s.derives("Serialize")
                || !(s.name.ends_with("Report") || s.name.ends_with("Stats"))
            {
                continue;
            }
            for field in &s.fields {
                if !field.ty.starts_with("Option") {
                    continue;
                }
                if field
                    .attrs
                    .iter()
                    .any(|a| a.contains("skip_serializing_if"))
                {
                    continue;
                }
                if fs.waived(R5_REPORT_STABILITY, field.line) {
                    continue;
                }
                diags.push(Diagnostic {
                    file: fs.path.display().to_string(),
                    line: field.line,
                    rule: R5_REPORT_STABILITY,
                    message: format!(
                        "`{}::{}` is an ungated `Option` field of a serialized report: add \
                         #[serde(skip_serializing_if = \"Option::is_none\")] so healthy \
                         golden reports stay byte-identical",
                        s.name, field.name
                    ),
                });
            }
        }
    }
}
