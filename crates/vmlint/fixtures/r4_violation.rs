//! R4 fixture: naming shared machine state inside the parallel epoch
//! phase must fire, directly and through a callee.

pub struct CoreState;

impl CoreState {
    pub fn run_slice_local(&mut self, sys: &mut System) {
        sys.dram.access(0x1000); // violation: shared DRAM touched core-locally
        self.helper(sys);
    }

    fn helper(&mut self, sys: &mut System) {
        sys.os.background_tick(); // violation: shared kernel state, one hop down
    }
}
