//! R1 fixture: the hot path stays quiet when it only touches pre-sized
//! state, and cold helpers may allocate freely when they are not
//! reachable from a root.

pub struct System {
    counter: u64,
}

impl System {
    pub fn step_block(&mut self) {
        self.memory_access();
    }

    fn memory_access(&mut self) {
        self.counter += 1;
    }

    pub fn cold_summary(&self) -> String {
        format!("counter = {}", self.counter)
    }
}
