//! R4 fixture: the epoch phase stays quiet when it only logs into the
//! core-private slice log, and serial-phase code may touch anything.

pub struct CoreState {
    log: SliceLog,
}

impl CoreState {
    pub fn run_slice_local(&mut self) {
        self.log.record(0x1000);
    }
}

pub struct System;

impl System {
    pub fn serial_barrier(&mut self) {
        self.dram.access(0x1000);
        self.os.background_tick();
    }
}
