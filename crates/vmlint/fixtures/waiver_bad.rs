//! Waiver fixture: a directive without a justification is malformed and
//! suppresses nothing; a directive naming an unknown rule is reported.

pub fn run() {
    // vmlint: allow(determinism)
    let started = Instant::now();
    // vmlint: allow(no-such-rule, "this rule does not exist")
    let again = Instant::now();
    drop((started, again));
}
