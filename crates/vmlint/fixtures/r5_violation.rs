//! R5 fixture: an ungated `Option` field on a serialized report must fire.

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulationReport {
    pub cycles: u64,
    pub oom: Option<OomStats>, // violation: no skip_serializing_if gate
}
