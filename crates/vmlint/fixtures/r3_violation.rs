//! R3 fixture: nondeterminism sources in a simulation crate must fire.

use std::collections::HashMap;
use std::time::Instant;

pub fn run() {
    let started = Instant::now();
    let mut stats: HashMap<u64, u64> = HashMap::new();
    stats.insert(1, started.elapsed().as_nanos() as u64);
    let me = std::thread::current();
    drop(me);
}
