//! R2 fixture: an Fx map keyed by a raw address type must fire.

pub struct ResidentSet {
    pages: FxHashMap<u64, Mapping>,
    tracked: FxHashSet<VirtAddr>,
}
