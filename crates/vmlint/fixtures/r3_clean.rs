//! R3 fixture: deterministic containers and seeded RNG stay quiet, and
//! test modules may use whatever they want.

use std::collections::BTreeMap;

pub fn run(seed: u64) -> u64 {
    let mut stats: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = DetRng::new(seed);
    stats.insert(1, rng.next_u64());
    stats.values().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn hosts_tools_are_fine_in_tests() {
        let _start = Instant::now();
        let _m: HashMap<u32, u32> = HashMap::new();
    }
}
