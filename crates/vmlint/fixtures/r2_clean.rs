//! R2 fixture: newtype and tuple-of-newtype keys stay quiet.

pub struct ResidentSet {
    pages: FxHashMap<Vpn, Mapping>,
    per_asid: FxHashMap<(Asid, Vpn), Mapping>,
    by_frame: FxHashSet<FrameNumber>,
}
