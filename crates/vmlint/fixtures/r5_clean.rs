//! R5 fixture: gated `Option` fields, non-Option fields, and Option
//! fields on structs that are not serialized reports all stay quiet.

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulationReport {
    pub cycles: u64,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub oom: Option<OomStats>,
}

#[derive(Debug, Clone)]
pub struct ScratchState {
    pub pending: Option<u64>,
}
