//! R1 fixture: allocation reachable from a hot-path root must fire.

pub struct System;

impl System {
    pub fn step_block(&mut self) {
        self.memory_access();
    }

    fn memory_access(&mut self) {
        let label = format!("access {}", 42); // violation: format! in the closure
        let mut scratch = Vec::new(); // violation: Vec::new in the closure
        scratch.push(label.len());
    }
}
