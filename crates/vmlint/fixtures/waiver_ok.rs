//! Waiver fixture: a justified directive suppresses the diagnostic on
//! the next code line.

use std::collections::BTreeMap;

pub fn run() {
    // vmlint: allow(determinism, "host-side progress display only; never feeds simulation state")
    let started = Instant::now();
    let mut stats: BTreeMap<u64, u64> = BTreeMap::new();
    stats.insert(1, started.elapsed().as_nanos() as u64);
}
