//! SSD organization and timing configuration.

use serde::{Deserialize, Serialize};

/// Organization and timing parameters of the simulated SSD.
///
/// The defaults approximate a datacenter NVMe TLC drive: ~70 µs flash read,
/// ~600 µs program, a few microseconds of controller and transfer overhead,
/// organized as 8 channels × 4 chips.
///
/// # Examples
///
/// ```
/// use ssd_sim::SsdConfig;
/// let cfg = SsdConfig::nvme_datacenter();
/// assert_eq!(cfg.total_chips(), cfg.channels * cfg.chips_per_channel);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Number of flash channels.
    pub channels: usize,
    /// Flash chips (dies) per channel.
    pub chips_per_channel: usize,
    /// Flash page size in bytes (the unit of read/program).
    pub flash_page_bytes: u64,
    /// Flash array read latency (tR) in nanoseconds.
    pub read_latency_ns: f64,
    /// Flash array program latency (tPROG) in nanoseconds.
    pub program_latency_ns: f64,
    /// Controller firmware + queueing overhead per request in nanoseconds.
    pub controller_latency_ns: f64,
    /// Data transfer latency over the channel/interface in nanoseconds.
    pub transfer_latency_ns: f64,
    /// How far the device clock advances per submitted request, modelling
    /// the host submission rate, in nanoseconds.
    pub request_spacing_ns: f64,
}

impl SsdConfig {
    /// A datacenter NVMe TLC drive.
    pub fn nvme_datacenter() -> Self {
        SsdConfig {
            channels: 8,
            chips_per_channel: 4,
            flash_page_bytes: 16 * 1024,
            read_latency_ns: 70_000.0,
            program_latency_ns: 600_000.0,
            controller_latency_ns: 3_000.0,
            transfer_latency_ns: 2_000.0,
            request_spacing_ns: 1_000.0,
        }
    }

    /// A fast Optane-like low-latency device, useful for sensitivity studies.
    pub fn low_latency() -> Self {
        SsdConfig {
            read_latency_ns: 10_000.0,
            program_latency_ns: 12_000.0,
            ..SsdConfig::nvme_datacenter()
        }
    }

    /// Total number of flash chips.
    pub fn total_chips(&self) -> usize {
        self.channels * self.chips_per_channel
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig::nvme_datacenter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datacenter_config_is_sane() {
        let cfg = SsdConfig::nvme_datacenter();
        assert!(cfg.total_chips() > 0);
        assert!(cfg.program_latency_ns > cfg.read_latency_ns);
        assert!(cfg.flash_page_bytes >= 4096);
    }

    #[test]
    fn low_latency_is_faster() {
        assert!(
            SsdConfig::low_latency().read_latency_ns < SsdConfig::nvme_datacenter().read_latency_ns
        );
    }

    #[test]
    fn default_is_datacenter() {
        assert_eq!(SsdConfig::default(), SsdConfig::nvme_datacenter());
    }
}
