//! An MQSim-inspired multi-queue SSD model.
//!
//! The paper couples Virtuoso with MQSim to model the storage device behind
//! the swap file and the page cache (disk-backed page faults and swapping
//! activity, e.g. the Utopia swapping study of Fig. 20). This crate provides
//! the equivalent substrate: an SSD organized as channels × chips × planes,
//! with NVMe-style submission queues, per-chip service occupancy, and flash
//! read/program latencies. The model is latency generating: each request
//! returns its end-to-end device latency.
//!
//! # Examples
//!
//! ```
//! use ssd_sim::{SsdConfig, SsdModel};
//!
//! let mut ssd = SsdModel::new(SsdConfig::nvme_datacenter());
//! let read = ssd.read(0x1000);
//! let write = ssd.write(0x2000);
//! assert!(write >= read); // program is slower than read on flash
//! ```

pub mod config;

pub use config::SsdConfig;

use serde::{Deserialize, Serialize};
use vm_types::{Counter, Nanoseconds, RunningStats};

/// Statistics accumulated by the SSD model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SsdStats {
    /// Number of read (page-in) requests.
    pub reads: Counter,
    /// Number of write (page-out) requests.
    pub writes: Counter,
    /// Latency distribution across all requests (nanoseconds).
    pub latency: RunningStats,
    /// Requests that queued behind a busy flash chip.
    pub queued_requests: Counter,
}

impl SsdStats {
    /// Total requests serviced.
    pub fn total_requests(&self) -> u64 {
        self.reads.get() + self.writes.get()
    }

    /// Mean device latency in nanoseconds.
    pub fn mean_latency_ns(&self) -> f64 {
        self.latency.mean()
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct ChipState {
    /// Nanosecond timestamp (device clock) at which the chip becomes idle.
    busy_until: f64,
}

/// The SSD device model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsdModel {
    config: SsdConfig,
    chips: Vec<ChipState>,
    stats: SsdStats,
    /// Device-internal clock in nanoseconds; advanced by the configured
    /// inter-arrival spacing per request so that bursts observe queueing.
    now_ns: f64,
}

impl SsdModel {
    /// Creates an SSD model from its configuration.
    pub fn new(config: SsdConfig) -> Self {
        let chips = vec![ChipState::default(); config.total_chips()];
        SsdModel {
            config,
            chips,
            stats: SsdStats::default(),
            now_ns: 0.0,
        }
    }

    /// The configuration of this device.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SsdStats {
        &self.stats
    }

    /// Resets statistics (chip occupancy is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = SsdStats::default();
    }

    fn chip_for(&self, lba: u64) -> usize {
        // Page-interleave logical block addresses across chips, like MQSim's
        // default channel/way striping.
        (lba / self.config.flash_page_bytes) as usize % self.chips.len()
    }

    fn service(&mut self, lba: u64, flash_latency_ns: f64, is_write: bool) -> Nanoseconds {
        let chip_idx = self.chip_for(lba);
        let chip = &mut self.chips[chip_idx];

        let queue_wait = (chip.busy_until - self.now_ns).max(0.0);
        if queue_wait > 0.0 {
            self.stats.queued_requests.inc();
        }
        let total = self.config.controller_latency_ns
            + self.config.transfer_latency_ns
            + queue_wait
            + flash_latency_ns;
        chip.busy_until = self.now_ns + queue_wait + flash_latency_ns;
        if is_write {
            // Writes are issued asynchronously (reclaim queues page-outs and
            // moves on), so the device clock advances only by the submission
            // spacing and bursts observe real queueing behind busy chips.
            self.now_ns += self.config.request_spacing_ns;
            self.stats.writes.inc();
        } else {
            // Reads are synchronous: the faulting core stalls for the full
            // returned latency, so the next request cannot be issued before
            // this one completes. Advancing the clock only by the submission
            // spacing here let every read stack behind the previous ones as
            // if they had been issued back to back — the queue backlog grew
            // without bound and a swap-storm's page-ins each appeared to
            // take hundreds of milliseconds of device time.
            self.now_ns += total;
            self.stats.reads.inc();
        }
        self.stats.latency.record(total);
        Nanoseconds::from_f64(total)
    }

    /// Reads the flash page containing logical block address `lba` and
    /// returns the device latency. Reads model synchronous page-ins: the
    /// device clock advances past the request's completion, since the
    /// faulting core observes the full latency before issuing anything else.
    pub fn read(&mut self, lba: u64) -> Nanoseconds {
        self.service(lba, self.config.read_latency_ns, false)
    }

    /// Programs (writes) the flash page containing `lba` and returns the
    /// device latency.
    pub fn write(&mut self, lba: u64) -> Nanoseconds {
        self.service(lba, self.config.program_latency_ns, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_latency_has_expected_floor() {
        let cfg = SsdConfig::nvme_datacenter();
        let mut ssd = SsdModel::new(cfg.clone());
        let lat = ssd.read(0);
        let floor = cfg.controller_latency_ns + cfg.transfer_latency_ns + cfg.read_latency_ns;
        assert!((lat.as_nanos() - floor).abs() < 1.0);
    }

    #[test]
    fn writes_are_slower_than_reads() {
        let mut ssd = SsdModel::new(SsdConfig::nvme_datacenter());
        let r = ssd.read(0x10_0000);
        let w = ssd.write(0x20_0000);
        assert!(w > r);
    }

    #[test]
    fn bursts_to_one_chip_observe_queueing() {
        let cfg = SsdConfig::nvme_datacenter();
        let mut ssd = SsdModel::new(cfg.clone());
        // Same flash page => same chip, back-to-back asynchronous writes.
        let first = ssd.write(0);
        let second = ssd.write(16);
        assert!(second > first);
        assert!(ssd.stats().queued_requests.get() >= 1);
    }

    #[test]
    fn synchronous_reads_drain_the_queue() {
        // A read completes before the next request is issued, so a burst of
        // reads to one chip never queues: each one sees an idle chip and
        // pays the same flat latency. (Before the fix, the device clock
        // advanced only by the 1 µs submission spacing per request while
        // each read occupied its chip for ~70 µs, so a swap storm's
        // page-ins stacked into an unbounded backlog.)
        let cfg = SsdConfig::nvme_datacenter();
        let mut ssd = SsdModel::new(cfg.clone());
        let first = ssd.read(0);
        for _ in 0..64 {
            let next = ssd.read(16);
            assert!((next.as_nanos() - first.as_nanos()).abs() < 1.0);
        }
        assert_eq!(ssd.stats().queued_requests.get(), 0);

        // A read issued while an earlier *write* still occupies the chip
        // does queue behind it — synchronous issue only serializes reads
        // against each other, it does not teleport past busy hardware.
        ssd.write(32);
        let behind_write = ssd.read(48);
        assert!(behind_write > first);
        assert!(ssd.stats().queued_requests.get() >= 1);
    }

    #[test]
    fn requests_interleave_across_chips() {
        let cfg = SsdConfig::nvme_datacenter();
        let chips = cfg.total_chips() as u64;
        let mut ssd = SsdModel::new(cfg.clone());
        // Touch one page per chip: none should queue.
        for i in 0..chips {
            ssd.read(i * cfg.flash_page_bytes);
        }
        assert_eq!(ssd.stats().queued_requests.get(), 0);
    }

    #[test]
    fn stats_count_reads_and_writes() {
        let mut ssd = SsdModel::new(SsdConfig::nvme_datacenter());
        ssd.read(0);
        ssd.read(4096);
        ssd.write(8192);
        assert_eq!(ssd.stats().reads.get(), 2);
        assert_eq!(ssd.stats().writes.get(), 1);
        assert_eq!(ssd.stats().total_requests(), 3);
        assert!(ssd.stats().mean_latency_ns() > 0.0);
    }

    #[test]
    fn reset_stats_clears_counts() {
        let mut ssd = SsdModel::new(SsdConfig::nvme_datacenter());
        ssd.read(0);
        ssd.reset_stats();
        assert_eq!(ssd.stats().total_requests(), 0);
    }

    #[test]
    fn read_latency_is_microseconds_scale() {
        // Sanity: a flash read should be tens of microseconds, which is what
        // makes major page faults so much more expensive than minor ones.
        let mut ssd = SsdModel::new(SsdConfig::nvme_datacenter());
        let lat = ssd.read(0);
        assert!(lat.as_micros() > 10.0);
        assert!(lat.as_micros() < 1000.0);
    }
}
