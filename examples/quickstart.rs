//! Quickstart: build the paper's baseline system (scaled down), run a small
//! pointer-chasing workload through it, and print the simulation report.
//!
//! Run with `cargo run --example quickstart`.

use virtuoso_suite::prelude::*;

fn main() {
    // A scaled-down version of the paper's Table 4 machine.
    let mut config = SystemConfig::small_test();
    config.mode = SimulationMode::Detailed;
    let mut system = System::new(config);

    // Map a 64 MB anonymous heap for the workload.
    system
        .mmap_anonymous(VirtAddr::new(0x10_0000_0000), 64 * 1024 * 1024)
        .expect("mapping the heap");

    // A graph-analytics-like workload: random pointer chasing over the heap.
    let spec = WorkloadSpec::simple(
        "quickstart-pointer-chase",
        WorkloadClass::LongRunning,
        64 * 1024 * 1024,
        AccessPattern::PointerChasing,
        50_000,
    );
    let report = system.run(&mut spec.build(42), None);

    println!("=== Virtuoso quickstart ===");
    println!("{}", report.to_table());
    println!(
        "address translation consumed {:.1}% of execution time",
        report.translation_time_fraction() * 100.0
    );
    println!(
        "physical memory allocation consumed {:.1}% of execution time",
        report.allocation_time_fraction() * 100.0
    );
}
