//! Use Cases 3–5 (paper §7.6) in miniature: drive the Midgard, Utopia and
//! RMM MMU models directly with workload address streams and report the
//! paper's headline metrics for each.
//!
//! Run with `cargo run --example mmu_design_space`.

use virtuoso_suite::mimic_os::kernel::RangeMapping;
use virtuoso_suite::mmu_sim::{
    MidgardConfig, MidgardMmu, RmmConfig, RmmMmu, UtopiaMmu, UtopiaMmuConfig,
};
use virtuoso_suite::prelude::*;
use virtuoso_suite::sim_core::TraceSource;

fn main() {
    // --- Midgard: frontend vs backend latency (Use Case 3 / Fig. 17) -----
    let bc = catalog::graphbig_bc();
    let mut midgard = MidgardMmu::new(
        MidgardConfig::paper_baseline(),
        PhysAddr::new(0xE0_0000_0000),
    );
    for region in &bc.regions {
        midgard.register_vma(region.start, region.bytes);
    }
    let mut trace = bc.with_instructions(60_000).build(11);
    while let Some(instr) = trace.next_instruction() {
        if let Some((va, _)) = instr.memory {
            midgard.translate(va);
        }
    }
    println!(
        "Midgard on BC: frontend fraction {:.1}%, L2 VLB hit ratio {:.1}%",
        midgard.stats().frontend_fraction() * 100.0,
        midgard.stats().l2_vlb_hit_ratio() * 100.0
    );

    // --- Utopia: RestSeg size vs metadata footprint (Use Case 4 / Fig. 19)
    for gb in [8u64, 16, 32, 64] {
        let cfg = UtopiaMmuConfig::paper_baseline().with_restseg_bytes(gb << 30);
        let mut utopia = UtopiaMmu::new(cfg, PhysAddr::new(0xD0_0000_0000));
        let mut metadata_accesses = 0u64;
        let mut t = catalog::gups_randacc().with_instructions(40_000).build(13);
        while let Some(instr) = t.next_instruction() {
            if let Some((va, _)) = instr.memory {
                metadata_accesses += utopia.translate(va).metadata_accesses.len() as u64;
            }
        }
        println!("Utopia {gb:>2} GB RestSeg: {metadata_accesses} RSW metadata fetches");
    }

    // --- RMM: range translation coverage (Use Case 5 / Fig. 21) ----------
    let mut rmm = RmmMmu::new(RmmConfig::paper_baseline(), PhysAddr::new(0xC0_0000_0000));
    rmm.register_range(RangeMapping {
        virt_start: VirtAddr::new(0x10_0000_0000),
        phys_start: PhysAddr::new(0x8_0000_0000),
        bytes: 512 * 1024 * 1024,
    });
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut t = catalog::graphbig_sssp().with_instructions(40_000).build(17);
    while let Some(instr) = t.next_instruction() {
        if let Some((va, _)) = instr.memory {
            if rmm.translate(va).is_some() {
                hits += 1;
            } else {
                misses += 1;
            }
        }
    }
    println!("RMM: {hits} translations served by ranges, {misses} fell back to the page table");
}
