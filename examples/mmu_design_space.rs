//! Use Cases 3–5 (paper §7.6) in miniature: run the Midgard, Utopia and
//! RMM translation engines **end to end** — same `System::run` path as
//! every other experiment, so faults, the kernel's placement decisions,
//! caches and DRAM all participate — and report the paper's headline
//! metric for each from the report's per-engine stats section.
//!
//! Run with `cargo run --example mmu_design_space`.

use virtuoso_suite::prelude::*;

fn run(config: SystemConfig, spec: &WorkloadSpec, seed: u64) -> SimulationReport {
    let mut system = System::new(config);
    let pid = system.pid();
    for (i, region) in spec.regions.iter().enumerate() {
        if region.file_backed {
            system
                .mmap_file_for(pid, region.start, region.bytes, i as u64 + 1)
                .expect("mapping region");
        } else {
            system
                .mmap_anonymous_for(pid, region.start, region.bytes)
                .expect("mapping region");
        }
    }
    system.run(&mut spec.build(seed), None)
}

fn main() {
    // --- Midgard: frontend vs backend latency (Use Case 3 / Fig. 17) -----
    // BC's 148-VMA profile thrashes the 16-entry L2 VLB (Fig. 18).
    let bc = catalog::graphbig_bc()
        .scaled_footprint(0.15)
        .with_instructions(60_000);
    let config = SystemConfig::small_test()
        .with_engine(EngineConfig::Midgard(MidgardConfig::paper_baseline()));
    let report = run(config, &bc, 11);
    if let Some(EngineReport::Midgard {
        frontend_fraction,
        l2_vlb_hit_ratio,
        ..
    }) = report.engine
    {
        println!(
            "Midgard on BC: frontend fraction {:.1}%, L2 VLB hit ratio {:.1}%",
            frontend_fraction * 100.0,
            l2_vlb_hit_ratio * 100.0
        );
    }

    // --- Utopia: RestSeg size vs metadata footprint (Use Case 4 / Fig. 19)
    // RestSeg sizes scaled to the 256 MB small-test machine.
    let gups = catalog::gups_randacc()
        .scaled_footprint(0.125)
        .with_instructions(40_000);
    for mb in [32u64, 64, 96, 128] {
        let restseg_bytes = mb << 20;
        let mut config = SystemConfig::small_test().with_engine(EngineConfig::Utopia(
            UtopiaMmuConfig::paper_baseline().with_restseg_bytes(restseg_bytes),
        ));
        config.os.policy = AllocationPolicy::Utopia(virtuoso_suite::mimic_os::UtopiaConfig::new(
            restseg_bytes,
            16,
            PageSize::Size4K,
        ));
        let report = run(config, &gups, 13);
        if let Some(EngineReport::Utopia {
            rsw_fetches,
            restseg_hits,
            ..
        }) = report.engine
        {
            println!(
                "Utopia {mb:>3} MB RestSeg: {rsw_fetches} RSW metadata fetches, \
                 {restseg_hits} RestSeg-resident translations"
            );
        }
    }

    // --- RMM: range translation coverage (Use Case 5 / Fig. 21) ----------
    // Eager paging builds the ranges; the range TLB absorbs the walks.
    let sssp = catalog::graphbig_sssp()
        .scaled_footprint(0.15)
        .with_instructions(40_000);
    let mut config =
        SystemConfig::small_test().with_engine(EngineConfig::Rmm(RmmConfig::paper_baseline()));
    config.os.policy = AllocationPolicy::EagerPaging;
    let report = run(config, &sssp, 17);
    if let Some(EngineReport::Rmm {
        range_translations,
        fallback_translations,
        range_coverage,
        ..
    }) = report.engine
    {
        println!(
            "RMM: {range_translations} translations served by ranges, \
             {fallback_translations} fell back to the page table \
             ({:.1}% coverage)",
            range_coverage * 100.0
        );
    }
}
