//! Use Case 2 (paper §7.5) in miniature: page-fault latency under different
//! physical memory allocation policies for LLM-inference-like workloads.
//!
//! Run with `cargo run --example llm_allocation_policies`.

use virtuoso_suite::prelude::*;

fn main() {
    let policies = [
        AllocationPolicy::BuddyFourK,
        AllocationPolicy::ConservativeReservationThp,
        AllocationPolicy::AggressiveReservationThp,
        AllocationPolicy::utopia_32mb_16way(),
    ];

    for spec in catalog::llm_workloads() {
        println!("=== {} ===", spec.name);
        println!(
            "{:<16} {:>12} {:>14} {:>14} {:>14}",
            "policy", "faults", "median (ns)", "p99 (ns)", "max (ns)"
        );
        for policy in policies {
            let config = SystemConfig::small_test().with_allocation_policy(policy);
            let mut system = System::new(config);
            for (i, region) in spec.regions.iter().enumerate() {
                if region.file_backed {
                    system
                        .mmap_file(region.start, region.bytes, i as u64 + 1)
                        .unwrap();
                } else {
                    system.mmap_anonymous(region.start, region.bytes).unwrap();
                }
            }
            let report = system.run(&mut spec.clone().with_instructions(40_000).build(3), None);
            let p = report.fault_latency_percentiles();
            println!(
                "{:<16} {:>12} {:>14.1} {:>14.1} {:>14.1}",
                policy.label(),
                report.total_faults(),
                p.p50,
                p.p99,
                p.max
            );
        }
        println!();
    }
}
