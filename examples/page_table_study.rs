//! Use Case 1 (paper §7.4) in miniature: compare the four page-table designs
//! (Radix, ECH, HDC, HT) on a TLB-stressing workload and report page-walk
//! latency, minor-fault latency and DRAM row-buffer conflicts.
//!
//! Run with `cargo run --example page_table_study`.

use virtuoso_suite::prelude::*;

fn main() {
    let spec = WorkloadSpec::simple(
        "pt-study",
        WorkloadClass::LongRunning,
        128 * 1024 * 1024,
        AccessPattern::PointerChasing,
        60_000,
    );

    println!(
        "{:<8} {:>14} {:>16} {:>18} {:>16}",
        "design", "avg PTW (cyc)", "total PTW (cyc)", "mean fault (ns)", "DRAM conflicts"
    );
    for kind in [
        PageTableKind::Radix,
        PageTableKind::ElasticCuckoo,
        PageTableKind::HashedOpenAddressing,
        PageTableKind::HashedChained,
    ] {
        let config = SystemConfig::small_test().with_page_table(kind);
        let mut system = System::new(config);
        system
            .mmap_anonymous(VirtAddr::new(0x10_0000_0000), 128 * 1024 * 1024)
            .expect("mapping the heap");
        let report = system.run(&mut spec.build(7), None);
        println!(
            "{:<8} {:>14.1} {:>16.0} {:>18.1} {:>16}",
            kind.label(),
            report.avg_ptw_latency_cycles,
            report.total_ptw_latency_cycles,
            report.fault_latency_ns.mean(),
            report.dram_row_conflicts,
        );
    }
}
