//! Property-based integration tests: cross-crate invariants that must hold
//! for arbitrary (small) workloads.

use proptest::prelude::*;
use virtuoso_suite::prelude::*;

fn run_workload(
    footprint_mb: u64,
    instructions: u64,
    seed: u64,
    pattern: AccessPattern,
) -> SimulationReport {
    let spec = WorkloadSpec::simple(
        "prop",
        WorkloadClass::LongRunning,
        footprint_mb * 1024 * 1024,
        pattern,
        instructions,
    );
    let mut system = System::new(SystemConfig::small_test());
    system
        .mmap_anonymous(spec.regions[0].start, spec.regions[0].bytes)
        .unwrap();
    system.run(&mut spec.build(seed), None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simulation_is_deterministic(seed in 0u64..1000) {
        let a = run_workload(8, 3_000, seed, AccessPattern::UniformRandom);
        let b = run_workload(8, 3_000, seed, AccessPattern::UniformRandom);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.minor_faults, b.minor_faults);
        prop_assert_eq!(a.dram_row_conflicts, b.dram_row_conflicts);
    }

    #[test]
    fn instruction_accounting_is_exact(instructions in 500u64..5_000, seed in 0u64..100) {
        let report = run_workload(4, instructions, seed, AccessPattern::PointerChasing);
        prop_assert_eq!(report.instructions, instructions);
        prop_assert!(report.cycles > 0);
        prop_assert!(report.ipc > 0.0);
    }

    #[test]
    fn time_fractions_are_probabilities(seed in 0u64..100) {
        let report = run_workload(16, 4_000, seed, AccessPattern::UniformRandom);
        let t = report.translation_time_fraction();
        let a = report.allocation_time_fraction();
        prop_assert!((0.0..=1.0).contains(&t));
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn faults_never_exceed_touched_pages(seed in 0u64..100) {
        let report = run_workload(8, 4_000, seed, AccessPattern::UniformRandom);
        // At most one fault per 4 KiB page of the footprint plus a small
        // slack for huge-page regions.
        prop_assert!(report.total_faults() <= 8 * 256 + 16);
    }

    #[test]
    fn asid_tagged_tlb_never_crosses_address_spaces(seed in 0u64..500) {
        // Install the same random virtual pages in two address spaces with
        // disjoint physical bases; every translation must resolve within
        // the requesting space's base, regardless of TLB state.
        use virtuoso_suite::mimic_os::Mapping;
        let mut rng = virtuoso_suite::vm_types::DetRng::new(seed);
        let mut mmu = Mmu::new(MmuConfig::small_test(PageTableKind::Radix));
        let a = Asid::new(1);
        let b = Asid::new(2);
        const BASE_A: u64 = 0x10_0000_0000;
        const BASE_B: u64 = 0x20_0000_0000;
        let mut pages = Vec::new();
        for _ in 0..64 {
            let va = (rng.gen_range(0, 1 << 20)) * 4096;
            pages.push(va);
            for (asid, base) in [(a, BASE_A), (b, BASE_B)] {
                mmu.install_mapping(asid, &Mapping {
                    vaddr: VirtAddr::new(va),
                    paddr: PhysAddr::new(base + va),
                    page_size: PageSize::Size4K,
                });
            }
        }
        for _ in 0..256 {
            let va = pages[rng.gen_range(0, pages.len() as u64) as usize]
                + rng.gen_range(0, 4096);
            let (asid, base) = if rng.gen_bool(0.5) { (a, BASE_A) } else { (b, BASE_B) };
            let result = mmu.translate(asid, VirtAddr::new(va));
            prop_assert_eq!(result.paddr, Some(PhysAddr::new(base + va)));
        }
        // A third address space must fault on every one of those pages.
        let stranger = Asid::new(3);
        for &va in pages.iter().take(16) {
            prop_assert!(mmu.translate(stranger, VirtAddr::new(va)).is_fault());
        }
    }

    #[test]
    fn page_table_engine_is_access_for_access_identical_to_the_mmu(seed in 0u64..500) {
        // The tentpole's no-regression pin: driving random install /
        // translate / context-switch / flush sequences through
        // `TranslationEngine::PageTable` must produce results identical —
        // down to every modeled walk access — to the direct `Mmu` path it
        // wraps. Any divergence would also shift the radix golden reports.
        use virtuoso_suite::mimic_os::Mapping;
        use virtuoso_suite::mmu_sim::InstallInfo;
        let mut rng = virtuoso_suite::vm_types::DetRng::new(seed ^ 0xE61E);
        let config = MmuConfig::small_test(PageTableKind::Radix);
        let mut engine = TranslationEngine::new(EngineConfig::PageTable);
        let mut engine_mmu = Mmu::new(config.clone());
        let mut mmu = Mmu::new(config);
        let asids = [Asid::KERNEL, Asid::new(1), Asid::new(2)];
        let mut installed: Vec<u64> = Vec::new();
        for _ in 0..300 {
            let asid = asids[rng.gen_range(0, asids.len() as u64) as usize];
            match rng.gen_range(0, 10) {
                // Install a page (occasionally huge) in a random space.
                0..=2 => {
                    let size = if rng.gen_bool(0.2) { PageSize::Size2M } else { PageSize::Size4K };
                    let va = rng.gen_range(0, 1 << 18) * 4096;
                    let mapping = Mapping {
                        vaddr: VirtAddr::new(va).page_base(size),
                        paddr: PhysAddr::new(0x10_0000_0000 + (va & !(size.bytes() - 1))),
                        page_size: size,
                    };
                    installed.push(va);
                    let ea = engine.handle_fault_install(
                        &mut engine_mmu, asid, &mapping, InstallInfo::default(),
                    );
                    let ma = mmu.install_mapping(asid, &mapping);
                    prop_assert_eq!(ea, ma, "install accesses must match");
                }
                // Context switch (both policies share the config).
                3 => {
                    let to = asids[rng.gen_range(0, asids.len() as u64) as usize];
                    prop_assert_eq!(
                        engine.context_switch(&mut engine_mmu, to),
                        mmu.context_switch(to)
                    );
                }
                // Tear down one address space.
                4 => {
                    prop_assert_eq!(
                        engine.flush_asid(&mut engine_mmu, asid),
                        mmu.flush_asid(asid)
                    );
                }
                // Translate a previously installed or random address.
                _ => {
                    let va = if installed.is_empty() || rng.gen_bool(0.3) {
                        rng.gen_range(0, 1 << 30)
                    } else {
                        installed[rng.gen_range(0, installed.len() as u64) as usize]
                            + rng.gen_range(0, 4096)
                    };
                    let er = engine.translate(&mut engine_mmu, asid, VirtAddr::new(va));
                    let mr = mmu.translate(asid, VirtAddr::new(va));
                    prop_assert_eq!(er, mr, "translation results must match");
                }
            }
        }
        // Accumulated statistics agree too.
        prop_assert_eq!(engine_mmu.stats(), mmu.stats());
    }

    #[test]
    fn no_stale_translation_survives_reclaim(
        seed in 0u64..300,
        engine_sel in 0u8..3,
        cores in 1usize..5,
    ) {
        // The shootdown regression fence: after ANY interleaving of
        // faults, reclaims (memory pressure forces them mid-run) and
        // context switches (more processes than cores, small quantum),
        // every core-local TLB entry and every engine-resident translation
        // must agree with the owning process's mapping table. Before the
        // invalidation subsystem, reclaimed pages kept translating through
        // stale TLB entries — and after buddy reuse, into another
        // process's frames. With several cores the same must hold on every
        // core's private frontend: a victim page faulted on one core may
        // be TLB-resident on another, and only the shootdown IPI broadcast
        // (which a remote core cannot drop without a channel-protocol
        // violation) keeps them coherent.
        //
        // Engines: the conventional page table, RMM (+ eager paging, so
        // reclaim must split live ranges) and Utopia (+ RestSeg policy, so
        // reclaim must evict engine residency). Midgard is exercised by
        // its own unit tests instead: its TLB entries are keyed by Midgard
        // addresses, which an external observer cannot map back.
        use virtuoso_suite::mimic_os::{ThpConfig, UtopiaConfig};
        let mut config = SystemConfig::small_test().with_cores(cores);
        config.os.memory_bytes = 16 << 20;
        config.os.swap_bytes = 128 << 20;
        config.os.swap_threshold = 0.5;
        config.os.thp = ThpConfig::disabled();
        config.os.populate_page_cache = false;
        config.os.sched_quantum = 1_000;
        match engine_sel {
            0 => config.os.policy = AllocationPolicy::BuddyFourK,
            1 => {
                config = config.with_engine(EngineConfig::Rmm(RmmConfig::paper_baseline()));
                config.os.policy = AllocationPolicy::EagerPaging;
            }
            _ => {
                let restseg = 8u64 << 20;
                config = config.with_engine(EngineConfig::Utopia(
                    UtopiaMmuConfig::paper_baseline().with_restseg_bytes(restseg),
                ));
                config.os.policy =
                    AllocationPolicy::Utopia(UtopiaConfig::new(restseg, 16, PageSize::Size4K));
            }
        }
        let mut system = System::new(config);
        // One more process than cores, so at least one core context
        // switches while the others run pinned processes.
        let mut pids = vec![system.pid()];
        while pids.len() < cores + 1 {
            pids.push(system.spawn_process());
        }
        // Every process maps the SAME virtual layout: RestSeg occupancy is
        // keyed by (ASID, VA), so identical layouts must never alias
        // translations across processes.
        let base = VirtAddr::new(0x1000_0000);
        let footprint: u64 = 12 << 20;
        for &pid in &pids {
            system.mmap_anonymous_for(pid, base, footprint).unwrap();
        }
        let spec = |i: usize| {
            let mut s = WorkloadSpec::simple(
                "w", WorkloadClass::LongRunning, footprint,
                AccessPattern::UniformRandom, 5_000,
            );
            s.name = format!("P{i}");
            s.regions[0].start = base;
            s
        };
        let mut sources: Vec<_> = (0..pids.len())
            .map(|i| spec(i).build(seed ^ (i as u64 * 0x5EED)))
            .collect();
        let report = {
            let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> = pids
                .iter()
                .copied()
                .zip(sources.iter_mut().map(|s| s as &mut dyn TraceSource))
                .collect();
            system.run_multiprogram(&mut programs, None)
        };
        // The run must actually have exercised the interesting machinery.
        prop_assert!(report.rollup.swapped_pages > 0, "no memory pressure reached");
        prop_assert!(report.context_switches > 0);
        let shootdowns = report.rollup.shootdowns.as_ref();
        prop_assert!(shootdowns.is_some());
        if cores > 1 {
            // Cross-core IPIs flowed and balanced: every broadcast was
            // received; none was droppable without tripping the channel.
            let per_core = shootdowns.unwrap().per_core.as_ref()
                .expect("multi-core shootdowns report per-core stats");
            prop_assert_eq!(per_core.len(), cores);
            let sent: u64 = per_core.iter().map(|c| c.ipis_sent).sum();
            let received: u64 = per_core.iter().map(|c| c.ipis_received).sum();
            prop_assert!(sent > 0, "multi-core reclaim must broadcast IPIs");
            prop_assert_eq!(sent, received);
        }

        let process_of = |asid: Asid| system.os().process(ProcessId(asid.raw() as usize));
        for core in 0..system.num_cores() {
            // 1. Every core-local TLB entry translates exactly as the
            //    owning process's mapping table does.
            for (asid, cached) in system.mmu_of(core).tlb().entries() {
                let expected = process_of(asid)
                    .lookup_mapping(cached.vaddr)
                    .map(|m| m.translate(cached.vaddr));
                prop_assert_eq!(
                    expected, Some(cached.translate(cached.vaddr)),
                    "core {}: stale TLB entry {} (asid {})", core, cached, asid.raw()
                );
            }
            // 1b. The L0 pointer cache stands down for every page a
            //     shootdown invalidated: probe every footprint page of
            //     every process — an L0 hit must translate exactly as the
            //     owning process's mapping table, and a hit for a
            //     reclaimed page (lookup_mapping → None) is a failure.
            for &pid in &pids {
                let asid = Asid::new(pid.0 as u16);
                let process = system.os().process(pid);
                for page in 0..(footprint / 4096) {
                    let va = base.add(page * 4096);
                    if let Some(pa) = system.mmu_of(core).l0_peek(asid, va) {
                        prop_assert_eq!(
                            process.lookup_mapping(va).map(|m| m.translate(va)),
                            Some(pa),
                            "core {}: stale L0 pointer for {} (asid {})",
                            core, va, asid.raw()
                        );
                    }
                }
            }
            // 2. Every engine-resident page translation agrees.
            for (asid, resident) in system.engine_of(core).resident_mappings() {
                prop_assert_eq!(
                    process_of(asid).lookup_mapping(resident.vaddr).map(|m| m.paddr),
                    Some(resident.paddr),
                    "core {}: stale RestSeg residency {}", core, resident
                );
            }
            // 3. Every page of every engine-registered range still maps to
            //    the range's frames (reclaim must have split ranges around
            //    victims).
            for (asid, range) in system.engine_of(core).resident_ranges() {
                let process = process_of(asid);
                for page in 0..(range.bytes / 4096) {
                    let va = range.virt_start.add(page * 4096);
                    let expected = range.phys_start.add(page * 4096);
                    let actual = process.lookup_mapping(va).map(|m| m.translate(va));
                    prop_assert_eq!(
                        actual, Some(expected),
                        "core {}: range covers {} but the mapping table disagrees (asid {})",
                        core, va, asid.raw()
                    );
                }
            }
        }
        // 4. The kernel's own range list agrees the same way.
        for &pid in &pids {
            let process = system.os().process(pid);
            for range in system.os().ranges(pid) {
                for page in 0..(range.bytes / 4096) {
                    let va = range.virt_start.add(page * 4096);
                    let expected = range.phys_start.add(page * 4096);
                    let actual = process.lookup_mapping(va).map(|m| m.translate(va));
                    prop_assert_eq!(
                        actual, Some(expected),
                        "kernel range covers {} but the mapping table disagrees (pid {})",
                        va, pid.0
                    );
                }
            }
        }
    }

    #[test]
    fn oom_kill_leaves_zero_residue_and_recycled_asids_are_safe(
        seed in 0u64..200,
        engine_sel in 0u8..3,
        cores in 1usize..5,
    ) {
        // The OOM killer's architectural contract: a killed process leaves
        // ZERO cached translation state anywhere in the machine — no TLB
        // entry, no engine residency (RestSeg placements, RMM ranges), no
        // L0 pointer, on any core — and its recycled pid slot (and with it
        // the SAME ASID) can immediately host a fresh process without
        // inheriting a single stale translation. A swapless machine far
        // smaller than the combined footprints guarantees the killer runs.
        use virtuoso_suite::mimic_os::{ThpConfig, UtopiaConfig};
        let mut config = SystemConfig::small_test()
            .with_cores(cores)
            .with_invariant_checks(1024);
        config.os.memory_bytes = 4 << 20;
        config.os.swap_bytes = 0;
        config.os.thp = ThpConfig::disabled();
        config.os.populate_page_cache = false;
        config.os.sched_quantum = 500;
        match engine_sel {
            0 => config.os.policy = AllocationPolicy::BuddyFourK,
            1 => {
                config = config.with_engine(EngineConfig::Rmm(RmmConfig::paper_baseline()));
                config.os.policy = AllocationPolicy::EagerPaging;
            }
            _ => {
                let restseg = 2u64 << 20;
                config = config.with_engine(EngineConfig::Utopia(
                    UtopiaMmuConfig::paper_baseline().with_restseg_bytes(restseg),
                ));
                config.os.policy =
                    AllocationPolicy::Utopia(UtopiaConfig::new(restseg, 16, PageSize::Size4K));
            }
        }
        let mut system = System::new(config);
        let mut pids = vec![system.pid()];
        while pids.len() < cores + 1 {
            pids.push(system.spawn_process());
        }
        let base = VirtAddr::new(0x1000_0000);
        let footprint: u64 = 8 << 20;
        for &pid in &pids {
            system.mmap_anonymous_for(pid, base, footprint).unwrap();
        }
        let spec = |i: usize| {
            let mut s = WorkloadSpec::simple(
                "w", WorkloadClass::LongRunning, footprint,
                AccessPattern::UniformRandom, 4_000,
            );
            s.name = format!("P{i}");
            s.regions[0].start = base;
            s
        };
        let mut sources: Vec<_> = (0..pids.len())
            .map(|i| spec(i).build(seed ^ (i as u64 * 0x0011)))
            .collect();
        let report = {
            let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> = pids
                .iter()
                .copied()
                .zip(sources.iter_mut().map(|s| s as &mut dyn TraceSource))
                .collect();
            system.run_multiprogram(&mut programs, None)
        };
        let oom = report.rollup.oom.as_ref().expect("pressure must reach the killer");
        prop_assert!(oom.kills >= 1, "this machine cannot host everyone");
        prop_assert_eq!(system.segfaults(), 0, "pressure is not a segfault");
        // Scheduler exits (trace exhaustion) do not mark the kernel
        // Process exited; only the OOM killer does — so `is_exited`
        // identifies exactly the victims.
        let killed: Vec<ProcessId> = pids
            .iter()
            .copied()
            .filter(|&p| system.os().process(p).is_exited())
            .collect();
        prop_assert_eq!(killed.len() as u64, oom.kills);
        for &victim in &killed {
            let asid = Asid::new(victim.0 as u16);
            prop_assert_eq!(system.os().process(victim).resident_bytes(), 0);
            prop_assert!(system.os().ranges(victim).is_empty());
            for core in 0..system.num_cores() {
                for (a, e) in system.mmu_of(core).tlb().entries() {
                    prop_assert!(
                        a != asid,
                        "core {}: TLB entry {} survives victim pid {}", core, e, victim.0
                    );
                }
                prop_assert!(system
                    .engine_of(core)
                    .resident_mappings()
                    .iter()
                    .all(|(a, _)| *a != asid));
                prop_assert!(system
                    .engine_of(core)
                    .resident_ranges()
                    .iter()
                    .all(|(a, _)| *a != asid));
                for page in 0..(footprint / 4096) {
                    prop_assert!(
                        system.mmu_of(core).l0_peek(asid, base.add(page * 4096)).is_none(),
                        "core {}: L0 pointer survives victim pid {}", core, victim.0
                    );
                }
            }
        }
        system.check_invariants().expect("post-kill machine is coherent");

        // Rebirth: the freed pid slot is recycled, so the new process runs
        // under a previously killed ASID. Memory is still scarce (the
        // survivors' footprints were never freed), so the reborn process
        // OOM-faults its way through them — and must never segfault or
        // trip the (still armed) fence.
        let segfaults_before = system.segfaults();
        let reborn = system.spawn_process();
        prop_assert!(killed.contains(&reborn), "pid slots must be recycled");
        system.mmap_anonymous_for(reborn, base, 1 << 20).unwrap();
        let mut s = WorkloadSpec::simple(
            "reborn", WorkloadClass::ShortRunning, 1 << 20,
            AccessPattern::UniformRandom, 2_000,
        );
        s.regions[0].start = base;
        let mut src = s.build(seed ^ 0xAB1D);
        let second = {
            let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> =
                vec![(reborn, &mut src)];
            system.run_multiprogram(&mut programs, None)
        };
        let _ = second;
        prop_assert_eq!(system.segfaults(), segfaults_before,
            "a recycled ASID must not inherit stale translations");
        prop_assert!(!system.os().process(reborn).is_exited());
        system.check_invariants().expect("the reborn machine is coherent");
    }

    #[test]
    fn scheduler_accounting_sums_to_total_instructions(
        instrs_a in 1_000u64..6_000,
        instrs_b in 1_000u64..6_000,
        seed in 0u64..100,
    ) {
        let spec_a = WorkloadSpec::simple(
            "A", WorkloadClass::LongRunning, 8 << 20,
            AccessPattern::UniformRandom, instrs_a,
        );
        let spec_b = WorkloadSpec::simple(
            "B", WorkloadClass::LongRunning, 8 << 20,
            AccessPattern::PointerChasing, instrs_b,
        );
        let mut system = System::new(SystemConfig::small_test());
        let a = system.pid();
        let b = system.spawn_process();
        let region_a = spec_a.regions[0];
        let region_b = spec_b.regions[0];
        system.mmap_anonymous_for(a, region_a.start, region_a.bytes).unwrap();
        system.mmap_anonymous_for(b, region_b.start, region_b.bytes).unwrap();
        let mut src_a = spec_a.build(seed);
        let mut src_b = spec_b.build(seed + 1);
        let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> =
            vec![(a, &mut src_a), (b, &mut src_b)];
        let report = system.run_multiprogram(&mut programs, None);
        // Every retired instruction is attributed to exactly one process,
        // by both the framework and the scheduler's own accounting.
        prop_assert_eq!(report.rollup.instructions, instrs_a + instrs_b);
        let per_proc: u64 = report.processes.iter().map(|p| p.instructions).sum();
        prop_assert_eq!(per_proc, instrs_a + instrs_b);
        for p in &report.processes {
            prop_assert_eq!(p.scheduled_instructions, p.instructions);
        }
        // Attributed cycles never exceed the machine total.
        let cycles: u64 = report.processes.iter().map(|p| p.cycles).sum();
        prop_assert!(cycles <= report.rollup.cycles);
    }

    #[test]
    fn buddy_frames_stay_disjoint_under_process_interleavings(seed in 0u64..200) {
        // Three processes fault random pages in a random interleaving; no
        // physical frame may ever back two live mappings, and the buddy
        // allocator's accounting must stay consistent.
        let mut rng = virtuoso_suite::vm_types::DetRng::new(seed ^ 0xB0DD7);
        let config = OsConfig {
            policy: AllocationPolicy::LinuxThp,
            ..OsConfig::small_test()
        };
        let mut os = MimicOs::new(config);
        let pids: Vec<ProcessId> = (0..3).map(|_| os.spawn_process()).collect();
        for &pid in &pids {
            os.mmap_anonymous(pid, VirtAddr::new(0x4000_0000), 16 << 20, false).unwrap();
        }
        for _ in 0..300 {
            let pid = pids[rng.gen_range(0, 3) as usize];
            let va = 0x4000_0000 + rng.gen_range(0, (16 << 20) / 4096) * 4096;
            let _ = os.handle_page_fault(pid, VirtAddr::new(va), rng.gen_bool(0.5));
        }
        prop_assert!(os.buddy().free_bytes() <= os.buddy().capacity_bytes());
        // Collect every live (start, end) physical range across processes.
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for &pid in &pids {
            for m in os.process(pid).mappings() {
                ranges.push((m.paddr.raw(), m.paddr.raw() + m.page_size.bytes()));
            }
        }
        ranges.sort_unstable();
        for pair in ranges.windows(2) {
            prop_assert!(
                pair[0].1 <= pair[1].0,
                "physical ranges overlap: {:x?} vs {:x?}", pair[0], pair[1]
            );
        }
    }
}
