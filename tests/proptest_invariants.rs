//! Property-based integration tests: cross-crate invariants that must hold
//! for arbitrary (small) workloads.

use proptest::prelude::*;
use virtuoso_suite::prelude::*;

fn run_workload(
    footprint_mb: u64,
    instructions: u64,
    seed: u64,
    pattern: AccessPattern,
) -> SimulationReport {
    let spec = WorkloadSpec::simple(
        "prop",
        WorkloadClass::LongRunning,
        footprint_mb * 1024 * 1024,
        pattern,
        instructions,
    );
    let mut system = System::new(SystemConfig::small_test());
    system
        .mmap_anonymous(spec.regions[0].start, spec.regions[0].bytes)
        .unwrap();
    system.run(&mut spec.build(seed), None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simulation_is_deterministic(seed in 0u64..1000) {
        let a = run_workload(8, 3_000, seed, AccessPattern::UniformRandom);
        let b = run_workload(8, 3_000, seed, AccessPattern::UniformRandom);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.minor_faults, b.minor_faults);
        prop_assert_eq!(a.dram_row_conflicts, b.dram_row_conflicts);
    }

    #[test]
    fn instruction_accounting_is_exact(instructions in 500u64..5_000, seed in 0u64..100) {
        let report = run_workload(4, instructions, seed, AccessPattern::PointerChasing);
        prop_assert_eq!(report.instructions, instructions);
        prop_assert!(report.cycles > 0);
        prop_assert!(report.ipc > 0.0);
    }

    #[test]
    fn time_fractions_are_probabilities(seed in 0u64..100) {
        let report = run_workload(16, 4_000, seed, AccessPattern::UniformRandom);
        let t = report.translation_time_fraction();
        let a = report.allocation_time_fraction();
        prop_assert!((0.0..=1.0).contains(&t));
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn faults_never_exceed_touched_pages(seed in 0u64..100) {
        let report = run_workload(8, 4_000, seed, AccessPattern::UniformRandom);
        // At most one fault per 4 KiB page of the footprint plus a small
        // slack for huge-page regions.
        prop_assert!(report.total_faults() <= 8 * 256 + 16);
    }
}
