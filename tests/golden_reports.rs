//! Golden-report regression tests: small single-process configurations
//! whose serialized [`SimulationReport`]s must stay byte-identical across
//! refactors, optimization levels and thread counts — three on the
//! conventional page-table engine, and one per alternative translation
//! engine (Midgard, RMM, Utopia) exercising the unified `System` path end
//! to end (engine-specific fault metadata, per-engine report section).
//!
//! The simulator is fully deterministic (seeded RNGs, no wall-clock, no
//! float environment games), so the serialized report of a fixed
//! (config, workload, seed) triple is a strong fingerprint of the whole
//! stack: a one-cycle timing change anywhere shows up here.
//!
//! Regenerate the goldens after an *intentional* behaviour change with:
//!
//! ```text
//! VIRTUOSO_BLESS_GOLDEN=1 cargo test --test golden_reports
//! ```

use virtuoso_suite::prelude::*;

/// The three golden cells: name, configuration, workload.
fn golden_cells() -> Vec<(&'static str, SystemConfig, WorkloadSpec)> {
    vec![
        (
            "faas_json_detailed",
            SystemConfig::small_test(),
            WorkloadSpec::simple(
                "JSON",
                WorkloadClass::ShortRunning,
                8 * 1024 * 1024,
                AccessPattern::AllocateAndTouch {
                    new_page_fraction: 0.5,
                },
                4_000,
            ),
        ),
        (
            "gups_emulation",
            SystemConfig::small_test().with_emulation_baseline(),
            WorkloadSpec::simple(
                "RND",
                WorkloadClass::LongRunning,
                16 * 1024 * 1024,
                AccessPattern::UniformRandom,
                4_000,
            ),
        ),
        (
            "stream_hashed_pt",
            SystemConfig::small_test().with_page_table(PageTableKind::HashedOpenAddressing),
            WorkloadSpec::simple(
                "XS",
                WorkloadClass::LongRunning,
                16 * 1024 * 1024,
                AccessPattern::Streaming {
                    jump_probability: 0.3,
                },
                4_000,
            ),
        ),
        (
            "reclaim_shootdown",
            {
                // Memory pressure run: more footprint than memory, a low
                // swap threshold, and a descending stream so reclaim
                // victims are TLB-hot — pins the whole shootdown path
                // (victim batches, IPI-charged kernel streams, the
                // serialized `shootdowns` report section).
                let mut config = SystemConfig::small_test();
                config.os.memory_bytes = 16 * 1024 * 1024;
                config.os.swap_bytes = 64 * 1024 * 1024;
                config.os.swap_threshold = 0.5;
                config.os.policy = AllocationPolicy::BuddyFourK;
                config.os.thp = virtuoso_suite::mimic_os::ThpConfig::disabled();
                config.os.populate_page_cache = false;
                config
            },
            WorkloadSpec::simple(
                "SWP",
                WorkloadClass::LongRunning,
                32 * 1024 * 1024,
                AccessPattern::UniformRandom,
                6_000,
            ),
        ),
        (
            "midgard_engine",
            SystemConfig::small_test()
                .with_engine(EngineConfig::Midgard(MidgardConfig::paper_baseline())),
            WorkloadSpec::simple(
                "MID",
                WorkloadClass::LongRunning,
                16 * 1024 * 1024,
                AccessPattern::PointerChasing,
                4_000,
            ),
        ),
        (
            "rmm_engine_eager",
            {
                let mut config = SystemConfig::small_test()
                    .with_engine(EngineConfig::Rmm(RmmConfig::paper_baseline()));
                config.os.policy = AllocationPolicy::EagerPaging;
                config
            },
            WorkloadSpec::simple(
                "RMM",
                WorkloadClass::LongRunning,
                16 * 1024 * 1024,
                AccessPattern::UniformRandom,
                4_000,
            ),
        ),
        (
            "utopia_engine_restseg",
            {
                let restseg_bytes: u64 = 32 * 1024 * 1024;
                let mut config = SystemConfig::small_test().with_engine(EngineConfig::Utopia(
                    UtopiaMmuConfig::paper_baseline().with_restseg_bytes(restseg_bytes),
                ));
                config.os.policy = AllocationPolicy::Utopia(mimic_os::UtopiaConfig::new(
                    restseg_bytes,
                    16,
                    PageSize::Size4K,
                ));
                config
            },
            WorkloadSpec::simple(
                "UTO",
                WorkloadClass::LongRunning,
                16 * 1024 * 1024,
                AccessPattern::UniformRandom,
                4_000,
            ),
        ),
    ]
}

fn run_cell(config: SystemConfig, spec: &WorkloadSpec) -> SimulationReport {
    let mut system = System::new(config);
    for region in &spec.regions {
        system
            .mmap_anonymous(region.start, region.bytes)
            .expect("mapping golden region");
    }
    system.run(&mut spec.build(0xF00D), None)
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

#[test]
fn simulation_reports_are_byte_stable() {
    let bless = std::env::var_os("VIRTUOSO_BLESS_GOLDEN").is_some();
    let mut mismatches = Vec::new();
    for (name, config, spec) in golden_cells() {
        let report = run_cell(config, &spec);
        let actual = serde_json::to_string(&report).expect("serialize report");
        let path = golden_path(name);
        if bless {
            std::fs::write(&path, &actual).expect("write golden");
            continue;
        }
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        if actual != expected {
            mismatches.push(name);
            eprintln!("golden mismatch for {name}:");
            eprintln!("  expected: {expected}");
            eprintln!("  actual:   {actual}");
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden reports drifted: {mismatches:?} — if the behaviour change is \
         intentional, regenerate with VIRTUOSO_BLESS_GOLDEN=1"
    );
}

#[test]
fn golden_runs_are_reproducible_within_a_process() {
    for (name, config, spec) in golden_cells() {
        let a = serde_json::to_string(&run_cell(config.clone(), &spec)).unwrap();
        let b = serde_json::to_string(&run_cell(config, &spec)).unwrap();
        assert_eq!(a, b, "cell {name} must be deterministic");
    }
}

/// A memory-pressure base configuration for the multi-core goldens: small
/// memory, big swap, descending reclaim pressure — so every cell's
/// shootdowns cross cores and the per-core IPI counters are nonzero.
fn multicore_pressure_config(num_cores: usize) -> SystemConfig {
    let mut config = SystemConfig::small_test().with_cores(num_cores);
    config.os.memory_bytes = 16 * 1024 * 1024;
    config.os.swap_bytes = 128 * 1024 * 1024;
    config.os.swap_threshold = 0.5;
    config.os.policy = AllocationPolicy::BuddyFourK;
    config.os.thp = virtuoso_suite::mimic_os::ThpConfig::disabled();
    config.os.populate_page_cache = false;
    config.os.sched_quantum = 1_000;
    config
}

/// The multi-core golden cells: name, configuration, one workload per
/// process (processes are pinned to cores by `pid % num_cores`).
fn multicore_golden_cells() -> Vec<(&'static str, SystemConfig, Vec<WorkloadSpec>)> {
    let spec = |name: &str, pattern: AccessPattern, instructions: u64| {
        let mut s = WorkloadSpec::simple(
            "mc",
            WorkloadClass::LongRunning,
            20 * 1024 * 1024,
            pattern,
            instructions,
        );
        s.name = name.to_string();
        s
    };
    vec![
        (
            "multicore_2core_shootdown",
            multicore_pressure_config(2),
            vec![
                spec("RND-A", AccessPattern::UniformRandom, 6_000),
                spec("RND-B", AccessPattern::UniformRandom, 6_000),
            ],
        ),
        (
            "multicore_4core_mix",
            multicore_pressure_config(4),
            vec![
                spec("RND", AccessPattern::UniformRandom, 4_000),
                spec(
                    "STR",
                    AccessPattern::Streaming {
                        jump_probability: 0.3,
                    },
                    4_000,
                ),
                spec("PTR", AccessPattern::PointerChasing, 4_000),
                spec(
                    "ALC",
                    AccessPattern::AllocateAndTouch {
                        new_page_fraction: 0.5,
                    },
                    4_000,
                ),
            ],
        ),
    ]
}

fn run_multicore_cell(config: SystemConfig, specs: &[WorkloadSpec]) -> MultiProgramReport {
    let mut system = System::new(config);
    let mut pids = vec![system.pid()];
    while pids.len() < specs.len() {
        pids.push(system.spawn_process());
    }
    for (pid, spec) in pids.iter().zip(specs) {
        for region in &spec.regions {
            system
                .mmap_anonymous_for(*pid, region.start, region.bytes)
                .expect("mapping golden region");
        }
    }
    let mut sources: Vec<_> = specs.iter().map(|s| s.build(0xF00D)).collect();
    let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> = pids
        .iter()
        .copied()
        .zip(sources.iter_mut().map(|s| s as &mut dyn TraceSource))
        .collect();
    system.run_multiprogram(&mut programs, None)
}

/// The OOM-killer golden: a swapless 4 MiB machine hosting a one-page
/// "light" process and a 12 MiB "hog". The hog's pressure forces the
/// kernel to sacrifice the light process, then to fail outright once no
/// victims remain — so the serialized [`MultiProgramReport`] pins the
/// whole robustness surface at once: the `oom` rollup section (kills,
/// scanned/freed bytes, reclaim retries, failures), per-process
/// `exit_status` and `oom_failures` attribution, and the shootdown
/// accounting of the victim's teardown.
#[test]
fn oom_kill_report_is_byte_stable() {
    let mut config = SystemConfig::small_test();
    config.os.memory_bytes = 4 * 1024 * 1024;
    config.os.swap_bytes = 0;
    config.os.policy = AllocationPolicy::BuddyFourK;
    config.os.thp = virtuoso_suite::mimic_os::ThpConfig::disabled();
    config.os.populate_page_cache = false;
    config.os.sched_quantum = 500;
    let light = {
        let mut s = WorkloadSpec::simple(
            "mc",
            WorkloadClass::ShortRunning,
            64 * 1024,
            AccessPattern::PointerChasing,
            20_000,
        );
        s.name = "LGT".to_string();
        s
    };
    let hog = {
        let mut s = WorkloadSpec::simple(
            "mc",
            WorkloadClass::LongRunning,
            12 * 1024 * 1024,
            AccessPattern::UniformRandom,
            4_000,
        );
        s.name = "HOG".to_string();
        s
    };
    let report = run_multicore_cell(config, &[light, hog]);

    // Survivor accounting must hold before the bytes are even compared.
    let oom = report
        .rollup
        .oom
        .as_ref()
        .expect("the pressure cell must reach the OOM killer");
    assert!(oom.kills >= 1, "the light process must be sacrificed");
    assert!(oom.freed_bytes > 0);
    let killed = report
        .processes
        .iter()
        .filter(|p| p.exit_status == ProcessExitStatus::OomKilled)
        .count() as u64;
    assert_eq!(killed, oom.kills, "every kill maps to one reported process");
    assert_eq!(
        report.processes.iter().map(|p| p.segfaults).sum::<u64>(),
        0,
        "memory pressure must never be misattributed as segfaults"
    );

    let bless = std::env::var_os("VIRTUOSO_BLESS_GOLDEN").is_some();
    let actual = serde_json::to_string(&report).expect("serialize report");
    let path = golden_path("oom_kill");
    if bless {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "oom_kill golden drifted — if the behaviour change is intentional, \
         regenerate with VIRTUOSO_BLESS_GOLDEN=1"
    );
}

/// The multi-core regression fingerprint: serialized
/// [`MultiProgramReport`]s of fixed N-core pressure cells must stay
/// byte-identical, and every cell must show real cross-core IPI work
/// (nonzero per-core stall counters) — so the goldens pin not just *that*
/// the runs are stable but that the shootdown IPI path stays exercised.
#[test]
fn multicore_reports_are_byte_stable() {
    let bless = std::env::var_os("VIRTUOSO_BLESS_GOLDEN").is_some();
    let mut mismatches = Vec::new();
    for (name, config, specs) in multicore_golden_cells() {
        let report = run_multicore_cell(config, &specs);
        let shootdowns = report
            .rollup
            .shootdowns
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: pressure cell must shoot down"));
        let per_core = shootdowns
            .per_core
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: multi-core cell must report per-core IPIs"));
        let stalled: u64 = per_core.iter().map(|c| c.ipi_stall_cycles).sum();
        assert!(stalled > 0, "{name}: remote IPI stalls must be nonzero");
        let actual = serde_json::to_string(&report).expect("serialize report");
        let path = golden_path(name);
        if bless {
            std::fs::write(&path, &actual).expect("write golden");
            continue;
        }
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        if actual != expected {
            mismatches.push(name);
            eprintln!("golden mismatch for {name}:");
            eprintln!("  expected: {expected}");
            eprintln!("  actual:   {actual}");
        }
    }
    assert!(
        mismatches.is_empty(),
        "multicore golden reports drifted: {mismatches:?} — if the behaviour \
         change is intentional, regenerate with VIRTUOSO_BLESS_GOLDEN=1"
    );
}
