//! Pins the PR-3 tentpole: the steady-state instruction loop performs
//! **zero heap allocations** — for all four translation engines
//! (page-table, Midgard, RMM, Utopia), in emulation mode, and on the
//! multi-core stepping path.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! populated address space and a warmup segment (which fills the dense
//! accounting tables, TLBs and caches), a measured segment of the
//! workload must not allocate at all. Every `Vec` that used to sit on the
//! per-instruction path — `HierarchyAccess::{dram_fetches,writebacks}`,
//! `WalkOutcome::accesses`, the replacement-victim scratch list, the
//! DRAM stats' string keys — would trip this test if it ever came back.
//!
//! The counter is **per-thread**: `System::step`/`step_on` do all their
//! work on the calling thread, and a process-global counter also charges
//! the libtest harness's main thread, which lazily initializes its
//! result-channel machinery (`std::sync::mpmc` thread-local contexts)
//! while parked in `recv` — at a point in time that races with the armed
//! windows here. The file still contains a single `#[test]` so the
//! measured segments never share the thread with anything else.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::cell::Cell;
use virtuoso_suite::prelude::*;

/// The per-engine configs mirror `virtuoso_bench`'s simspeed cells: each
/// alternative engine paired with the allocation policy its design
/// expects (eager paging feeds RMM's ranges, the Utopia policy places
/// pages in the RestSeg). Housekeeping is disabled because periodic
/// background OS work legitimately builds kernel instruction streams.
fn engine_config(engine: &str) -> SystemConfig {
    let mut config = SystemConfig::small_test();
    match engine {
        "page-table" => {}
        "midgard" => {
            config = config.with_engine(EngineConfig::Midgard(MidgardConfig::paper_baseline()));
        }
        "rmm" => {
            config = config.with_engine(EngineConfig::Rmm(RmmConfig::paper_baseline()));
            config.os.policy = AllocationPolicy::EagerPaging;
        }
        "utopia" => {
            let restseg_bytes: u64 = 64 * 1024 * 1024;
            config = config.with_engine(EngineConfig::Utopia(
                UtopiaMmuConfig::paper_baseline().with_restseg_bytes(restseg_bytes),
            ));
            config.os.policy = AllocationPolicy::Utopia(mimic_os::UtopiaConfig::new(
                restseg_bytes,
                16,
                PageSize::Size4K,
            ));
        }
        other => unreachable!("unknown engine {other}"),
    }
    config.housekeeping_interval = 0;
    config
}

/// Counts allocations (and growth reallocations) while armed.
struct CountingAllocator;

// `const`-initialized `Cell`s have no destructor and no lazy init, so
// touching them from inside the global allocator cannot itself allocate
// or recurse.
thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.get() {
            ALLOCATIONS.set(ALLOCATIONS.get() + 1);
        }
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.get() {
            ALLOCATIONS.set(ALLOCATIONS.get() + 1);
        }
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocations observed on this thread while running `f` with the
/// counter armed.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCATIONS.set(0);
    ARMED.set(true);
    let result = f();
    ARMED.set(false);
    (ALLOCATIONS.get(), result)
}

fn steady_state_allocations(mode_label: &str, config: SystemConfig) -> u64 {
    const FOOTPRINT: u64 = 32 * 1024 * 1024;
    const WARMUP: u64 = 20_000;
    const MEASURED: u64 = 50_000;

    let mut system = System::new(config);
    let pid = system.pid();
    system
        .mmap_anonymous(VirtAddr::new(0x10_0000_0000), FOOTPRINT)
        .expect("map workload region");
    // Establish every mapping up front (MAP_POPULATE): the measured
    // segment then exercises translation, page walks, caches and DRAM —
    // but takes no page faults.
    system.populate(pid);

    // GUPS-style uniform random accesses: the paper's worst-case
    // translation-bound pattern, constantly missing the small-test TLB.
    let spec = WorkloadSpec::simple(
        "alloc-free",
        WorkloadClass::LongRunning,
        FOOTPRINT,
        AccessPattern::UniformRandom,
        WARMUP + MEASURED,
    );
    let mut source = spec.build(0xA110C);

    let mut step = |n: u64, system: &mut System| {
        for _ in 0..n {
            let instr = source.next_instruction().expect("trace long enough");
            system.step(&instr);
        }
    };

    // Warmup: first touches of the dense accounting slots, TLB/PWC/cache
    // fills, DRAM bank state.
    step(WARMUP, &mut system);

    let (allocations, ()) = allocations_during(|| step(MEASURED, &mut system));
    eprintln!("{mode_label}: {allocations} allocations over {MEASURED} steady-state instructions");
    allocations
}

/// The multi-core variant: four cores, one populated process pinned to
/// each, stepped round-robin through the per-core stepping API. The
/// sharded frontend (per-core TLBs/PWCs/engines, the active-core
/// indirection) must not reintroduce allocations into the steady state.
fn multicore_steady_state_allocations() -> u64 {
    const CORES: usize = 4;
    const FOOTPRINT: u64 = 16 * 1024 * 1024;
    const WARMUP: u64 = 20_000;
    const MEASURED: u64 = 50_000;

    let mut config = SystemConfig::small_test().with_cores(CORES);
    config.housekeeping_interval = 0;
    let mut system = System::new(config);
    let mut pids = vec![system.pid()];
    while pids.len() < CORES {
        pids.push(system.spawn_process());
    }
    for &pid in &pids {
        system
            .mmap_anonymous_for(pid, VirtAddr::new(0x10_0000_0000), FOOTPRINT)
            .expect("map workload region");
        system.populate(pid);
    }

    let spec = WorkloadSpec::simple(
        "alloc-free-mc",
        WorkloadClass::LongRunning,
        FOOTPRINT,
        AccessPattern::UniformRandom,
        WARMUP + MEASURED,
    );
    let mut sources: Vec<_> = (0..CORES)
        .map(|i| spec.build(0xA110C ^ (i as u64) << 8))
        .collect();

    let mut step = |n: u64, system: &mut System| {
        for i in 0..n {
            let core = (i % CORES as u64) as usize;
            let instr = sources[core].next_instruction().expect("trace long enough");
            system.step_on(core, &instr);
        }
    };

    step(WARMUP, &mut system);
    let (allocations, ()) = allocations_during(|| step(MEASURED, &mut system));
    eprintln!(
        "multicore: {allocations} allocations over {MEASURED} steady-state instructions on {CORES} cores"
    );
    allocations
}

#[test]
fn steady_state_instructions_allocate_nothing() {
    // Housekeeping (khugepaged, pool refill) is periodic background OS
    // work that legitimately builds kernel instruction streams; the
    // steady-state *instruction loop* itself is what must be
    // allocation-free.
    let mut emulation = SystemConfig::small_test().with_emulation_baseline();
    emulation.housekeeping_interval = 0;

    // Sanity-check the counter itself before trusting the zero results.
    let (sanity, _) = allocations_during(|| std::hint::black_box(Vec::<u64>::with_capacity(16)));
    assert!(
        sanity > 0,
        "the counting allocator must observe allocations"
    );

    // All four translation engines: the Utopia cell is the one that would
    // have caught the per-translation `Vec<PhysAddr>` allocation that sat
    // in `UtopiaMmu::translate` until the simspeed cliff was profiled.
    for engine in ["page-table", "midgard", "rmm", "utopia"] {
        let allocs = steady_state_allocations(engine, engine_config(engine));
        assert_eq!(allocs, 0, "{engine} steady state must not allocate");
    }

    let emulation_allocs = steady_state_allocations("emulation", emulation);
    let multicore_allocs = multicore_steady_state_allocations();

    assert_eq!(
        emulation_allocs, 0,
        "emulation-mode steady state must not allocate"
    );
    assert_eq!(
        multicore_allocs, 0,
        "four-core steady state must not allocate"
    );
}
