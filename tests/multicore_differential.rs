//! The multi-core differential fence (PR-6 tentpole).
//!
//! The sharded multi-core loop ([`System::run_multiprogram_sharded`]) is a
//! superset of the legacy single-core model: at `num_cores = 1` it must
//! reproduce the legacy [`System::run_multiprogram`] path **byte for
//! byte** — same dispatches, same preemption points, same charged cycle on
//! every instruction — for every translation engine. That differential is
//! the fence that lets the multi-core machinery evolve without silently
//! perturbing the single-core results all the paper's experiments (and
//! golden reports) are built on.
//!
//! On top of the fence, this file pins the genuinely multi-core behaviour:
//! cross-core shootdown IPIs under memory pressure (nonzero per-core
//! send/receive/stall counters, post-run translation coherence on every
//! core) and bit-identical determinism of N-core runs. The core count of
//! the determinism test honours `VIRTUOSO_CORES` so CI can sweep it.

use virtuoso_suite::prelude::*;

/// One two-process fence cell per translation engine, mirroring the
/// engine coverage of the golden reports.
fn engine_cells() -> Vec<(&'static str, SystemConfig)> {
    use virtuoso_suite::mimic_os::UtopiaConfig;
    let restseg_bytes: u64 = 32 * 1024 * 1024;
    vec![
        ("page_table", SystemConfig::small_test()),
        (
            "midgard",
            SystemConfig::small_test()
                .with_engine(EngineConfig::Midgard(MidgardConfig::paper_baseline())),
        ),
        ("rmm_eager", {
            let mut config = SystemConfig::small_test()
                .with_engine(EngineConfig::Rmm(RmmConfig::paper_baseline()));
            config.os.policy = AllocationPolicy::EagerPaging;
            config
        }),
        ("utopia_restseg", {
            let mut config = SystemConfig::small_test().with_engine(EngineConfig::Utopia(
                UtopiaMmuConfig::paper_baseline().with_restseg_bytes(restseg_bytes),
            ));
            config.os.policy =
                AllocationPolicy::Utopia(UtopiaConfig::new(restseg_bytes, 16, PageSize::Size4K));
            config
        }),
    ]
}

/// Spawns one process per spec and maps each spec's regions into it.
fn build_multiprocess(config: SystemConfig, specs: &[WorkloadSpec]) -> (System, Vec<ProcessId>) {
    let mut system = System::new(config);
    let mut pids = vec![system.pid()];
    while pids.len() < specs.len() {
        pids.push(system.spawn_process());
    }
    for (pid, spec) in pids.iter().zip(specs) {
        for (i, region) in spec.regions.iter().enumerate() {
            if region.file_backed {
                system
                    .mmap_file_for(*pid, region.start, region.bytes, i as u64 + 1)
                    .unwrap();
            } else {
                system
                    .mmap_anonymous_for(*pid, region.start, region.bytes)
                    .unwrap();
            }
        }
    }
    (system, pids)
}

fn run_mix(
    system: &mut System,
    pids: &[ProcessId],
    specs: &[WorkloadSpec],
    seed: u64,
    sharded: bool,
) -> MultiProgramReport {
    let mut sources: Vec<_> = specs.iter().map(|s| s.build(seed)).collect();
    let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> = pids
        .iter()
        .copied()
        .zip(sources.iter_mut().map(|s| s as &mut dyn TraceSource))
        .collect();
    if sharded {
        system.run_multiprogram_sharded(&mut programs, None)
    } else {
        system.run_multiprogram(&mut programs, None)
    }
}

/// The fence itself: a `num_cores = 1` run through the sharded multi-core
/// loop serializes byte-identically to the legacy single-core loop, for
/// every translation engine, on the catalogue's engine mix.
#[test]
fn single_core_sharded_run_is_byte_identical_to_legacy() {
    let specs: Vec<WorkloadSpec> = catalog::multiprogram_mix_engines()
        .into_iter()
        .map(|s| s.with_instructions(6_000))
        .collect();
    for (name, config) in engine_cells() {
        assert_eq!(config.os.num_cores, 1, "{name}: fence runs at one core");
        let (mut legacy_sys, pids) = build_multiprocess(config.clone(), &specs);
        let legacy = run_mix(&mut legacy_sys, &pids, &specs, 0xD1FF, false);

        let (mut sharded_sys, pids) = build_multiprocess(config, &specs);
        let sharded = run_mix(&mut sharded_sys, &pids, &specs, 0xD1FF, true);

        let legacy_json = serde_json::to_string(&legacy).unwrap();
        let sharded_json = serde_json::to_string(&sharded).unwrap();
        assert_eq!(
            legacy_json, sharded_json,
            "engine {name}: the sharded loop diverged from the legacy \
             single-core model at num_cores = 1"
        );
    }
}

/// A memory-pressure configuration small enough that two random-access
/// processes force reclaim — and with it cross-core shootdowns.
fn pressure_config(num_cores: usize) -> SystemConfig {
    let mut config = SystemConfig::small_test().with_cores(num_cores);
    config.os.memory_bytes = 16 * 1024 * 1024;
    config.os.swap_bytes = 128 * 1024 * 1024;
    config.os.swap_threshold = 0.5;
    config.os.policy = AllocationPolicy::BuddyFourK;
    config.os.thp = virtuoso_suite::mimic_os::ThpConfig::disabled();
    config.os.populate_page_cache = false;
    config.os.sched_quantum = 1_000;
    config
}

fn pressure_specs(count: usize, instructions: u64) -> Vec<WorkloadSpec> {
    (0..count)
        .map(|i| {
            let mut spec = WorkloadSpec::simple(
                "prs",
                WorkloadClass::LongRunning,
                24 * 1024 * 1024,
                AccessPattern::UniformRandom,
                instructions,
            );
            spec.name = format!("PRS{i}");
            spec
        })
        .collect()
}

/// Every core-local TLB entry and engine residency agrees with the owning
/// process's mapping table — the multi-core coherence invariant.
fn assert_per_core_coherence(system: &System) {
    for core in 0..system.num_cores() {
        for (asid, cached) in system.mmu_of(core).tlb().entries() {
            let process = system.os().process(ProcessId(asid.raw() as usize));
            let expected = process
                .lookup_mapping(cached.vaddr)
                .map(|m| m.translate(cached.vaddr));
            assert_eq!(
                expected,
                Some(cached.translate(cached.vaddr)),
                "core {core}: stale TLB entry {cached} (asid {})",
                asid.raw()
            );
        }
        for (asid, resident) in system.engine_of(core).resident_mappings() {
            let process = system.os().process(ProcessId(asid.raw() as usize));
            assert_eq!(
                process.lookup_mapping(resident.vaddr).map(|m| m.paddr),
                Some(resident.paddr),
                "core {core}: stale engine residency {resident}"
            );
        }
    }
}

/// The multi-core acceptance scenario: two cores under memory pressure
/// take real cross-core shootdowns — the initiator broadcasts IPIs, the
/// remote core stalls and tears down its own state — and the per-core
/// counters in the report show it.
#[test]
fn two_core_pressure_run_reports_cross_core_ipi_work() {
    let specs = pressure_specs(2, 8_000);
    let (mut system, pids) = build_multiprocess(pressure_config(2), &specs);
    assert_eq!(system.num_cores(), 2);
    assert_eq!(system.core_of(pids[0]), 0);
    assert_eq!(system.core_of(pids[1]), 1);

    let report = run_mix(&mut system, &pids, &specs, 0xC0DE, true);

    assert_eq!(report.rollup.instructions, 16_000);
    assert!(report.rollup.swapped_pages > 0, "pressure must swap");
    let shootdowns = report
        .rollup
        .shootdowns
        .as_ref()
        .expect("swapping implies shootdowns");
    let per_core = shootdowns
        .per_core
        .as_ref()
        .expect("a multi-core shootdown run reports per-core IPI stats");
    assert_eq!(per_core.len(), 2);
    let sent: u64 = per_core.iter().map(|c| c.ipis_sent).sum();
    let received: u64 = per_core.iter().map(|c| c.ipis_received).sum();
    let stalled: u64 = per_core.iter().map(|c| c.ipi_stall_cycles).sum();
    assert!(sent > 0, "reclaim must broadcast cross-core IPIs");
    assert_eq!(sent, received, "every IPI sent is received exactly once");
    assert!(stalled > 0, "remote cores must stall on IPI delivery");
    // The serialized report carries the per-core section.
    let json = serde_json::to_string(&report.rollup).unwrap();
    assert!(json.contains("\"per_core\""));

    assert_per_core_coherence(&system);
}

/// Core count for the N-core determinism sweep: `VIRTUOSO_CORES` (the CI
/// matrix leg sets 4), defaulting to 2.
fn sweep_cores() -> usize {
    std::env::var("VIRTUOSO_CORES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// Same N-core configuration, same seeds, repeated runs: bit-identical
/// serialized reports. Multi-core interleaving is deterministic by
/// construction (round-robin ticks, not threads).
#[test]
fn multicore_runs_are_bit_identical_across_repeats() {
    let cores = sweep_cores();
    let specs = pressure_specs(4, 4_000);
    let mut reports = Vec::new();
    for _ in 0..3 {
        let (mut system, pids) = build_multiprocess(pressure_config(cores), &specs);
        let report = run_mix(&mut system, &pids, &specs, 0xDE7, true);
        reports.push(serde_json::to_string(&report).unwrap());
    }
    assert_eq!(
        reports[0], reports[1],
        "{cores}-core run must be deterministic"
    );
    assert_eq!(
        reports[1], reports[2],
        "{cores}-core run must be deterministic"
    );
}

/// Workloads for the host-thread invariance sweep: one random-access
/// process per core over a machine with plenty of memory, so the epoch
/// planner's fault-headroom check passes and slices genuinely run on
/// parallel host threads (no reclaim, no OOM, no injection).
fn plentiful_specs(count: usize, instructions: u64) -> Vec<WorkloadSpec> {
    (0..count)
        .map(|i| {
            let mut spec = WorkloadSpec::simple(
                "thr",
                WorkloadClass::LongRunning,
                8 * 1024 * 1024,
                AccessPattern::UniformRandom,
                instructions,
            );
            spec.name = format!("THR{i}");
            spec
        })
        .collect()
}

/// Per-core cycle attribution: with one process pinned to each core and
/// no background housekeeping, every cycle a core model accumulates over
/// the run is attributed to exactly the process that held it — the
/// per-process `cycles` in the report equals its core's whole counter,
/// byte for byte. This is the accounting the per-process `ipc` (and the
/// benchmark harness's `sim_ipc`) divides through; a core's cycles
/// bleeding into another core's process, or escaping attribution
/// entirely, shows up here as an exact-equality failure.
#[test]
fn per_core_cycles_are_fully_attributed_to_the_pinned_process() {
    const CORES: usize = 4;
    let specs = plentiful_specs(CORES, 4_000);
    let mut config = SystemConfig::small_test().with_cores(CORES);
    // Housekeeping kernel streams run between attribution windows and
    // would legitimately advance a core past its process's share.
    config.housekeeping_interval = 0;
    let (mut system, pids) = build_multiprocess(config, &specs);
    let report = run_mix(&mut system, &pids, &specs, 0xACC7, true);

    for process in &report.processes {
        let core = system.core_of(ProcessId(process.pid));
        assert_eq!(process.instructions, 4_000);
        assert_eq!(
            process.cycles,
            system.core_model_of(core).cycles().raw(),
            "process {} (core {core}): reported cycles must equal the \
             pinned core's full cycle counter",
            process.pid
        );
    }
}

/// The tentpole determinism contract: the `host_threads` knob trades host
/// CPU for wall clock and **nothing else** — a 4-core run stepped on 1, 2
/// or 4 host threads serializes to byte-identical reports, for every
/// translation engine. The plentiful-memory configuration keeps the epoch
/// planner engaged (asserted via [`System::epochs_run`]) so the test
/// exercises the parallel path rather than the serial fallback.
#[test]
fn reports_are_byte_identical_across_host_thread_counts() {
    const CORES: usize = 4;
    let specs = plentiful_specs(CORES, 4_000);
    for (name, config) in engine_cells() {
        let config = config.with_cores(CORES);
        let mut baseline = None;
        for threads in [1usize, 2, CORES] {
            let config = config.clone().with_host_threads(threads);
            let (mut system, pids) = build_multiprocess(config, &specs);
            let report = run_mix(&mut system, &pids, &specs, 0x7A4D, true);
            assert!(
                system.epochs_run() > 0,
                "engine {name}, {threads} host threads: the epoch planner \
                 never engaged — the sweep is not testing the parallel path"
            );
            let json = serde_json::to_string(&report).unwrap();
            match &baseline {
                None => baseline = Some(json),
                Some(expected) => assert_eq!(
                    expected, &json,
                    "engine {name}: {threads} host threads diverged from \
                     the single-threaded schedule"
                ),
            }
        }
    }
}

/// The same contract under memory pressure, where the epoch planner
/// stands down (reclaim and OOM kills may touch every core) and the loop
/// serializes onto the legacy one-tick schedule: thread counts still
/// cannot matter, because no epoch is ever allowed to run concurrently
/// with reclaim.
#[test]
fn pressure_runs_are_byte_identical_across_host_thread_counts() {
    const CORES: usize = 4;
    let specs = pressure_specs(CORES, 4_000);
    let mut baseline = None;
    for threads in [1usize, CORES] {
        let config = pressure_config(CORES).with_host_threads(threads);
        let (mut system, pids) = build_multiprocess(config, &specs);
        let report = run_mix(&mut system, &pids, &specs, 0xD1FF, true);
        let json = serde_json::to_string(&report).unwrap();
        match &baseline {
            None => baseline = Some(json),
            Some(expected) => assert_eq!(
                expected, &json,
                "{threads} host threads diverged under memory pressure"
            ),
        }
    }
}

/// `run_multiprogram` itself dispatches to the sharded loop when the
/// config asks for more than one core — the public API needs no separate
/// entry point.
#[test]
fn run_multiprogram_dispatches_to_the_sharded_loop_on_multicore_configs() {
    let cores = sweep_cores().max(2);
    let specs = pressure_specs(2, 4_000);

    let (mut via_dispatch, pids) = build_multiprocess(pressure_config(cores), &specs);
    let a = run_mix(&mut via_dispatch, &pids, &specs, 0xABCD, false);

    let (mut direct, pids) = build_multiprocess(pressure_config(cores), &specs);
    let b = run_mix(&mut direct, &pids, &specs, 0xABCD, true);

    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}
