//! Integration tests spanning crates: the full Virtuoso stack driven by
//! synthetic workloads from the catalogue.

use virtuoso_suite::prelude::*;

fn build_system(config: SystemConfig, spec: &WorkloadSpec) -> System {
    let mut system = System::new(config);
    for (i, region) in spec.regions.iter().enumerate() {
        if region.file_backed {
            system
                .mmap_file(region.start, region.bytes, i as u64 + 1)
                .unwrap();
        } else {
            system.mmap_anonymous(region.start, region.bytes).unwrap();
        }
    }
    system
}

#[test]
fn long_running_workload_is_translation_bound() {
    let spec = catalog::gups_randacc().with_instructions(30_000);
    let mut system = build_system(SystemConfig::small_test(), &spec);
    let report = system.run(&mut spec.build(1), None);
    assert_eq!(report.instructions, 30_000);
    assert!(report.page_walks > 0);
    assert!(report.l2_tlb_mpki > 0.0);
    assert!(report.translation_time_fraction() > 0.0);
}

#[test]
fn short_running_workload_is_allocation_bound() {
    use virtuoso_suite::mmu_sim::MmuConfig;
    let spec = catalog::faas_json().with_instructions(30_000);
    // Use the paper's real TLB hierarchy so the small working set is covered
    // by the TLBs (as on the real machine) and allocation dominates.
    let mut config = SystemConfig::small_test();
    config.mmu = MmuConfig::paper_baseline(PageTableKind::Radix);
    let mut system = build_system(config, &spec);
    let report = system.run(&mut spec.build(2), None);
    // Allocation-bound behaviour: the run takes first-touch faults, spends a
    // measurable share of its time in the fault handler, and — with the
    // paper's real TLB hierarchy covering the small working set — only a
    // small share of its time on address translation (the Fig. 1 contrast).
    assert!(report.minor_faults > 0);
    assert!(report.allocation_time_fraction() > 0.0);
    assert!(report.translation_time_fraction() < 0.5);
}

#[test]
fn detailed_mode_differs_from_emulation_mode_in_timing_not_function() {
    let spec = catalog::faas_db_filter().with_instructions(20_000);
    let mut detailed = build_system(SystemConfig::small_test(), &spec);
    let mut emulated = build_system(SystemConfig::small_test().with_emulation_baseline(), &spec);
    let d = detailed.run(&mut spec.build(3), None);
    let e = emulated.run(&mut spec.build(3), None);
    assert_eq!(
        d.minor_faults + d.major_faults,
        e.minor_faults + e.major_faults
    );
    assert!(d.kernel_instructions > 0);
    assert_eq!(e.kernel_instructions, 0);
}

#[test]
fn every_page_table_design_completes_the_same_workload() {
    // Scale the footprint so it fits the small-test machine's 256 MB of
    // physical memory even under THP.
    let spec = catalog::graphbig_bfs()
        .scaled_footprint(0.25)
        .with_instructions(15_000);
    for kind in [
        PageTableKind::Radix,
        PageTableKind::ElasticCuckoo,
        PageTableKind::HashedOpenAddressing,
        PageTableKind::HashedChained,
    ] {
        let mut system = build_system(SystemConfig::small_test().with_page_table(kind), &spec);
        let report = system.run(&mut spec.build(4), None);
        assert_eq!(report.instructions, 15_000, "{kind}");
        assert!(report.page_walks > 0, "{kind}");
        assert_eq!(system.segfaults(), 0, "{kind}");
    }
}

#[test]
fn allocation_policies_complete_and_differ_in_huge_page_usage() {
    let spec = catalog::llm_llama().with_instructions(20_000);
    let mut huge_by_policy = Vec::new();
    for policy in [AllocationPolicy::BuddyFourK, AllocationPolicy::LinuxThp] {
        let mut system = build_system(
            SystemConfig::small_test().with_allocation_policy(policy),
            &spec,
        );
        let report = system.run(&mut spec.build(5), None);
        huge_by_policy.push(report.huge_mappings);
    }
    assert_eq!(
        huge_by_policy[0], 0,
        "BuddyFourK must not create huge pages"
    );
    assert!(huge_by_policy[1] > 0, "LinuxThp should create huge pages");
}

#[test]
fn swap_path_exercises_the_ssd_model() {
    use virtuoso_suite::mimic_os::{OsConfig, ThpConfig};
    let mut config = SystemConfig::small_test();
    config.os = OsConfig {
        memory_bytes: 16 * 1024 * 1024,
        swap_bytes: 64 * 1024 * 1024,
        swap_threshold: 0.5,
        policy: AllocationPolicy::BuddyFourK,
        thp: ThpConfig::disabled(),
        fragmentation_target: None,
        populate_page_cache: false,
        ..OsConfig::small_test()
    };
    let spec = WorkloadSpec::simple(
        "swap-pressure",
        WorkloadClass::LongRunning,
        48 * 1024 * 1024,
        AccessPattern::UniformRandom,
        40_000,
    );
    let mut system = build_system(config, &spec);
    let report = system.run(&mut spec.build(6), None);
    assert!(
        report.swapped_pages > 0,
        "memory pressure must trigger swapping"
    );
    assert!(report.swap_io_ns > 0.0);
    assert!(system.os().ssd().stats().total_requests() > 0);
}

#[test]
fn reports_serialize_to_json() {
    let spec = catalog::img_2d_sum().with_instructions(5_000);
    let mut system = build_system(SystemConfig::small_test(), &spec);
    let report = system.run(&mut spec.build(7), None);
    let json = serde_json::to_string(&report).expect("report serializes");
    assert!(json.contains("\"workload\""));
}

/// The acceptance scenario of the multi-process extension: the catalogue's
/// GUPS + Llama mix runs interleaved under the scheduler, produces
/// per-process reports, and the ASID-tagged TLB configuration takes fewer
/// flush-induced page walks than the full-flush baseline.
#[test]
fn two_process_interleaved_run_with_asid_selective_flushes() {
    let run = |asid_tags: bool| {
        let mut config = SystemConfig::small_test();
        config.mmu.asid_tlb_tags = asid_tags;
        let mut system = System::new(config);
        let specs: Vec<WorkloadSpec> = catalog::multiprogram_mix()
            .into_iter()
            .map(|s| s.with_instructions(8_000))
            .collect();
        let pids = [system.pid(), system.spawn_process()];
        for (pid, spec) in pids.iter().zip(&specs) {
            for (i, region) in spec.regions.iter().enumerate() {
                if region.file_backed {
                    system
                        .mmap_file_for(*pid, region.start, region.bytes, i as u64 + 1)
                        .unwrap();
                } else {
                    system
                        .mmap_anonymous_for(*pid, region.start, region.bytes)
                        .unwrap();
                }
            }
        }
        let mut sources: Vec<_> = specs.iter().map(|s| s.build(9)).collect();
        let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> = pids
            .iter()
            .copied()
            .zip(sources.iter_mut().map(|s| s as &mut dyn TraceSource))
            .collect();
        system.run_multiprogram(&mut programs, None)
    };

    let tagged = run(true);
    let flushed = run(false);

    // The run completes with one report per process.
    assert_eq!(tagged.processes.len(), 2);
    assert_eq!(tagged.processes[0].workload, "RND");
    assert_eq!(tagged.processes[1].workload, "Llama-2-7B");
    for p in &tagged.processes {
        assert_eq!(p.instructions, 8_000);
        assert!(p.cycles > 0);
        assert!(p.tlb_translations > 0);
        assert!(p.minor_faults > 0);
    }
    assert_eq!(tagged.rollup.instructions, 16_000);
    assert!(tagged.context_switches > 0);

    // ASID-selective behaviour: no entries lost to switches, and fewer
    // flush-induced TLB misses (page walks) than the full-flush baseline.
    assert_eq!(tagged.switch_flushed_tlb_entries, 0);
    assert!(flushed.switch_flushed_tlb_entries > 0);
    let walks = |r: &MultiProgramReport| -> u64 { r.processes.iter().map(|p| p.page_walks).sum() };
    assert!(
        walks(&tagged) < walks(&flushed),
        "ASID tags: {} walks, full flush: {} walks",
        walks(&tagged),
        walks(&flushed)
    );
}
