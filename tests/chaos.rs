//! Chaos integration tests: seeded fault injection, memory pressure, the
//! OOM killer and the runtime coherence fence, together.
//!
//! The error paths a real kernel fights hardest on — allocation
//! shortfalls, swap-device hiccups, slow shootdown IPIs — only fire in the
//! simulator under extreme workloads. [`FaultInjectionConfig`] makes them
//! fire on demand from a private seeded RNG, so every run here is
//! bit-reproducible at any test parallelism; the coherence fence
//! ([`System::check_invariants`]) runs *during* the runs (armed via
//! `SystemConfig::with_invariant_checks`) and panics on the first piece of
//! cached translation state that disagrees with the kernel.
//!
//! CI runs this suite twice: once at the default core count and once with
//! `VIRTUOSO_CORES=4`, which widens every test to a four-core machine.

use proptest::prelude::*;
use virtuoso_suite::mimic_os::{FaultInjectionConfig, ThpConfig};
use virtuoso_suite::prelude::*;

/// Core count for the sweeps: `VIRTUOSO_CORES` (the CI chaos leg sets 4),
/// defaulting to 2.
fn sweep_cores() -> usize {
    std::env::var("VIRTUOSO_CORES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// A pressured machine with the fence armed and the given injection plan.
fn chaos_config(cores: usize, swap_bytes: u64, injection: FaultInjectionConfig) -> SystemConfig {
    let mut config = SystemConfig::small_test()
        .with_cores(cores)
        .with_invariant_checks(2_048);
    config.os.memory_bytes = 8 << 20;
    config.os.swap_bytes = swap_bytes;
    config.os.swap_threshold = 0.5;
    config.os.policy = AllocationPolicy::BuddyFourK;
    config.os.thp = ThpConfig::disabled();
    config.os.populate_page_cache = false;
    config.os.sched_quantum = 500;
    config.os.fault_injection = injection;
    config
}

/// Every failure source armed at once.
fn storm(seed: u64) -> FaultInjectionConfig {
    FaultInjectionConfig {
        seed,
        alloc_shortfall_rate: 0.05,
        scripted_alloc_shortfalls: vec![3, 17, 41],
        swap_io_error_rate: 0.05,
        swap_latency_spike_rate: 0.05,
        swap_latency_spike_ns: 5_000.0,
        ipi_delay_rate: 0.25,
        ipi_delay_cycles: 400,
    }
}

/// Runs `num_programs` uniform-random workloads over a shared layout and
/// returns the report (the `System` is returned too for post-mortems).
fn run_chaos_mix(
    config: SystemConfig,
    num_programs: usize,
    footprint: u64,
    instructions: u64,
    seed: u64,
) -> (System, MultiProgramReport) {
    let mut system = System::new(config);
    let mut pids = vec![system.pid()];
    while pids.len() < num_programs {
        pids.push(system.spawn_process());
    }
    let base = VirtAddr::new(0x1000_0000);
    for &pid in &pids {
        system.mmap_anonymous_for(pid, base, footprint).unwrap();
    }
    let mut sources: Vec<_> = (0..pids.len())
        .map(|i| {
            let mut s = WorkloadSpec::simple(
                "chaos",
                WorkloadClass::LongRunning,
                footprint,
                AccessPattern::UniformRandom,
                instructions,
            );
            s.name = format!("P{i}");
            s.regions[0].start = base;
            s.build(seed ^ (i as u64 * 0xC4A05))
        })
        .collect();
    let report = {
        let mut programs: Vec<(ProcessId, &mut dyn TraceSource)> = pids
            .iter()
            .copied()
            .zip(sources.iter_mut().map(|s| s as &mut dyn TraceSource))
            .collect();
        system.run_multiprogram(&mut programs, None)
    };
    (system, report)
}

/// The headline property: a fully armed failure storm produces the same
/// serialized report, byte for byte, every time — injection decisions come
/// from a private seeded RNG, never from wall clocks or iteration order.
#[test]
fn injected_chaos_is_bit_reproducible() {
    let cores = sweep_cores();
    let run = || {
        let (system, report) = run_chaos_mix(
            chaos_config(cores, 32 << 20, storm(0x57012)),
            cores + 1,
            12 << 20,
            5_000,
            0xD1CE,
        );
        let stats = system.os().stats();
        assert!(
            stats.injected_alloc_shortfalls.get() > 0,
            "the storm must actually inject shortfalls"
        );
        assert!(stats.injected_swap_io_errors.get() > 0);
        assert!(stats.injected_swap_latency_spikes.get() > 0);
        if cores > 1 {
            assert!(stats.injected_ipi_delays.get() > 0);
        }
        system
            .check_invariants()
            .expect("chaos leaves a coherent machine");
        serde_json::to_string(&report).unwrap()
    };
    assert_eq!(run(), run(), "chaos must be deterministic");
}

/// The storm under parallel core stepping: fault injection forces the
/// sharded loop off the epoch path (injected shortfalls, swap errors and
/// IPI delays may touch any core at any instruction), so every
/// `host_threads` value must serialize onto the same one-tick schedule —
/// byte for byte, with the coherence fence armed throughout.
#[test]
fn injected_chaos_is_bit_identical_across_host_thread_counts() {
    let cores = sweep_cores().max(2);
    let run = |threads: usize| {
        let (system, report) = run_chaos_mix(
            chaos_config(cores, 32 << 20, storm(0x57012)).with_host_threads(threads),
            cores + 1,
            12 << 20,
            5_000,
            0xD1CE,
        );
        system
            .check_invariants()
            .expect("chaos leaves a coherent machine");
        serde_json::to_string(&report).unwrap()
    };
    let single = run(1);
    assert_eq!(single, run(2), "2 host threads diverged under the storm");
    assert_eq!(
        single,
        run(cores),
        "{cores} host threads diverged under the storm"
    );
}

/// Scripted shortfalls push faults into the reclaim retry path even when
/// memory is plentiful: the machine swaps although it never had to, and
/// the run still completes without a single failed access.
#[test]
fn scripted_shortfalls_force_reclaim_on_a_healthy_machine() {
    let injection = FaultInjectionConfig {
        alloc_shortfall_rate: 0.2,
        scripted_alloc_shortfalls: vec![0, 1, 2],
        ..FaultInjectionConfig::default()
    };
    let mut config = chaos_config(1, 32 << 20, injection);
    config.os.memory_bytes = 64 << 20; // no real pressure at all
    let (system, report) = run_chaos_mix(config, 1, 8 << 20, 4_000, 0xFEED);
    assert!(system.os().stats().injected_alloc_shortfalls.get() > 0);
    assert!(
        report.rollup.swapped_pages > 0,
        "injected shortfalls must force reclaim despite free memory"
    );
    assert_eq!(system.segfaults(), 0);
    assert_eq!(
        system.oom_failures(),
        0,
        "a retry after reclaim must succeed"
    );
    system.check_invariants().unwrap();
}

/// Swap-device chaos (transient I/O errors, latency spikes) slows the
/// machine down but never changes what it computes: same instructions,
/// same faults, strictly more cycles.
#[test]
fn swap_device_chaos_only_costs_time() {
    let calm = chaos_config(1, 32 << 20, FaultInjectionConfig::default());
    let noisy = chaos_config(
        1,
        32 << 20,
        FaultInjectionConfig {
            swap_io_error_rate: 0.5,
            swap_latency_spike_rate: 0.5,
            swap_latency_spike_ns: 10_000.0,
            ..FaultInjectionConfig::default()
        },
    );
    let (_, a) = run_chaos_mix(calm, 2, 12 << 20, 5_000, 0x10);
    let (system, b) = run_chaos_mix(noisy, 2, 12 << 20, 5_000, 0x10);
    assert!(system.os().stats().injected_swap_io_errors.get() > 0);
    assert_eq!(a.rollup.instructions, b.rollup.instructions);
    assert_eq!(a.rollup.minor_faults, b.rollup.minor_faults);
    assert_eq!(a.rollup.major_faults, b.rollup.major_faults);
    assert!(
        b.rollup.cycles > a.rollup.cycles,
        "device chaos must cost cycles ({} vs {})",
        b.rollup.cycles,
        a.rollup.cycles
    );
}

/// The full gauntlet: a swapless machine too small for its tenants, a
/// failure storm on top, the fence armed throughout. The OOM killer must
/// engage, survivors must be attributed correctly, and the machine must
/// pass the coherence fence both mid-run (armed) and at the end.
#[test]
fn oom_kills_under_a_failure_storm_stay_coherent() {
    let cores = sweep_cores();
    let (system, report) = run_chaos_mix(
        chaos_config(cores, 0, storm(0xBAD)),
        cores + 1,
        12 << 20,
        5_000,
        0x0DD,
    );
    let oom = report
        .rollup
        .oom
        .as_ref()
        .expect("a swapless overcommitted machine must reach the killer");
    assert!(oom.kills >= 1);
    assert!(oom.freed_bytes > 0);
    assert_eq!(system.segfaults(), 0);
    assert_eq!(
        report
            .processes
            .iter()
            .filter(|p| p.exit_status == ProcessExitStatus::OomKilled)
            .count() as u64,
        oom.kills
    );
    system.check_invariants().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized storms over randomized machines: whatever fires, the
    /// armed fence never trips and the post-run machine is coherent.
    #[test]
    fn random_storms_never_trip_the_fence(
        seed in 0u64..1_000,
        swapless in 0u8..2,
        cores in 1usize..5,
    ) {
        let swapless = swapless == 1;
        let swap = if swapless { 0 } else { 32 << 20 };
        let mut config = chaos_config(cores, swap, storm(seed));
        config.invariant_check_interval = 512;
        let (system, report) = run_chaos_mix(config, cores + 1, 12 << 20, 4_000, seed);
        prop_assert_eq!(system.segfaults(), 0);
        if swapless {
            let oom = report.rollup.oom.as_ref().expect("swapless overcommit kills");
            prop_assert!(oom.kills >= 1);
        }
        system.check_invariants().expect("chaos leaves a coherent machine");
    }
}
