//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small criterion surface its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling the shim times a handful of
//! iterations with `std::time::Instant` and prints the mean wall-clock time
//! per iteration — enough to compare configurations and to keep the bench
//! harnesses compiling, running, and honest under `cargo bench`.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Identifier for one benchmark within a group (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id such as `mode/emulation`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A bare parameter id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark, timing the closure handed to [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            total_ns: 0.0,
        };
        f(&mut bencher);
        let mean_ns = bencher.total_ns / bencher.iterations.max(1) as f64;
        eprintln!(
            "  {}/{}: {:.1} us/iter",
            self.name,
            id.id,
            mean_ns / 1_000.0
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times a closure over a fixed number of iterations.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    total_ns: f64,
}

impl Bencher {
    /// Runs `routine` once for warm-up, then `iterations` timed runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.total_ns = start.elapsed().as_nanos() as f64;
    }
}

/// Declares a function that runs each listed bench against one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
