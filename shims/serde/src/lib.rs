//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small serde surface Virtuoso actually uses:
//!
//! * a [`Serialize`] trait that writes compact JSON text directly (consumed
//!   by the vendored `serde_json` shim's `to_string`),
//! * a [`Deserialize`] marker trait,
//! * `#[derive(Serialize)]` / `#[derive(Deserialize)]` re-exported from the
//!   vendored `serde_derive` proc-macro crate (behind the usual `derive`
//!   feature flag).
//!
//! The data model is intentionally tiny: types serialize straight to a JSON
//! string rather than through a `Serializer` abstraction. That is all the
//! simulator needs — reports and configurations are serialized for human
//! inspection, never round-tripped.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt::Write as _;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types that can render themselves as compact JSON.
///
/// This is the shim's stand-in for `serde::Serialize`; the derive macro
/// generates `write_json` for structs and enums.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn write_json(&self, out: &mut String);
}

/// Marker stand-in for `serde::Deserialize`. The simulator never
/// deserializes, so no behaviour is required.
pub trait Deserialize {}

fn write_escaped_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_display {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{}", self);
            }
        })*
    };
}

impl_serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

macro_rules! impl_serialize_float {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    let _ = write!(out, "{}", self);
                } else {
                    out.push_str("null");
                }
            }
        })*
    };
}

impl_serialize_float!(f32, f64);

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_escaped_str(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_escaped_str(self, out);
    }
}

impl Serialize for char {
    fn write_json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        write_escaped_str(self.encode_utf8(&mut buf), out);
    }
}

impl Serialize for () {
    fn write_json(&self, out: &mut String) {
        out.push_str("null");
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.write_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

/// JSON object keys must be strings: serialize the key, then quote it if the
/// encoding was not already a string literal.
fn write_key<K: Serialize>(key: &K, out: &mut String) {
    let mut tmp = String::new();
    key.write_json(&mut tmp);
    if tmp.starts_with('"') {
        out.push_str(&tmp);
    } else {
        write_escaped_str(&tmp, out);
    }
}

fn write_map<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
    out: &mut String,
) {
    out.push('{');
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_key(k, out);
        out.push(':');
        v.write_json(out);
    }
    out.push('}');
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn write_json(&self, out: &mut String) {
        write_map(self.iter(), out);
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn write_json(&self, out: &mut String) {
        write_map(self.iter(), out);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        })*
    };
}

impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
