//! Vendored minimal stand-in for the `serde_derive` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a tiny derive implementation that covers exactly what
//! Virtuoso needs: `#[derive(Serialize)]` generates a `write_json` impl for
//! the shim `serde::Serialize` trait (named structs, tuple/unit structs,
//! and enums with unit/named/tuple variants), and `#[derive(Deserialize)]`
//! generates a marker impl. Generic types are not supported — none of the
//! workspace types that derive serde traits are generic.
//!
//! The derive is written against `proc_macro` alone (no `syn`/`quote`):
//! it walks the raw token stream, extracts the item shape, and emits the
//! impl as formatted source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier plus the predicate path of a
/// `#[serde(skip_serializing_if = "path")]` attribute, when present.
struct NamedField {
    name: String,
    skip_if: Option<String>,
}

/// Field layout of a struct or an enum variant.
enum Fields {
    /// Named fields (`{ a: T, b: U }`), in declaration order.
    Named(Vec<NamedField>),
    /// Tuple fields (`(T, U)`), by arity.
    Tuple(usize),
    /// No fields.
    Unit,
}

/// Parsed shape of the item the derive is attached to.
enum ItemKind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Derives the shim `serde::Serialize` trait (JSON text output).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim generated invalid Rust")
}

/// Derives the shim `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("serde_derive shim generated invalid Rust")
}

fn ident_str(tt: &TokenTree) -> String {
    match tt {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected identifier, found `{other}`"),
    }
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        if is_punct(&toks[i], '#') {
            i += 2; // `#` + bracket group
        } else if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        } else {
            break;
        }
    }
    let keyword = ident_str(&toks[i]);
    i += 1;
    let name = ident_str(&toks[i]);
    i += 1;
    if toks.get(i).is_some_and(|t| is_punct(t, '<')) {
        panic!("serde_derive shim: generic types are not supported (deriving for `{name}`)");
    }
    let kind = match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => ItemKind::Struct(Fields::Unit),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive shim: malformed enum `{name}`"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other} {name}`"),
    };
    Item { name, kind }
}

/// Extracts `skip_serializing_if = "path"` from the token stream of a
/// `#[serde(...)]` attribute's bracket group, if present.
fn skip_if_of_attr(group: &TokenTree) -> Option<String> {
    let TokenTree::Group(g) = group else {
        return None;
    };
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    // Expect `serde ( ... )`.
    if toks.len() != 2 || ident_str(&toks[0]) != "serde" {
        return None;
    }
    let TokenTree::Group(inner) = &toks[1] else {
        return None;
    };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        if matches!(&inner[i], TokenTree::Ident(id) if id.to_string() == "skip_serializing_if") {
            // `skip_serializing_if` `=` `"path"`
            if let Some(TokenTree::Literal(lit)) = inner.get(i + 2) {
                let raw = lit.to_string();
                return Some(raw.trim_matches('"').to_string());
            }
        }
        i += 1;
    }
    None
}

/// Extracts the field names from the body of a brace-delimited field list,
/// skipping attributes, visibility, and types (angle-bracket aware so that
/// commas inside generics such as `HashMap<u64, Vma>` do not split fields).
/// `#[serde(skip_serializing_if = "...")]` attributes are recorded on the
/// field they precede.
fn parse_named_fields(ts: TokenStream) -> Vec<NamedField> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut skip_if = None;
        while i < toks.len() && is_punct(&toks[i], '#') {
            if skip_if.is_none() {
                skip_if = toks.get(i + 1).and_then(skip_if_of_attr);
            }
            i += 2;
        }
        if i >= toks.len() {
            break;
        }
        if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        fields.push(NamedField {
            name: ident_str(&toks[i]),
            skip_if,
        });
        i += 1; // field name
        i += 1; // `:`
        let mut depth = 0i64;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a paren-delimited (tuple) field list.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i64;
    let mut count = 1;
    let mut trailing_comma = false;
    for tt in &toks {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while i < toks.len() && is_punct(&toks[i], '#') {
            i += 2;
        }
        if i >= toks.len() {
            break;
        }
        let name = ident_str(&toks[i]);
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip any discriminant (`= expr`) up to the variant separator.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push((name, fields));
    }
    variants
}

/// Emits `out.push_str("...");` for a raw JSON fragment.
fn push_lit(code: &mut String, fragment: &str) {
    code.push_str("out.push_str(\"");
    for c in fragment.chars() {
        match c {
            '"' => code.push_str("\\\""),
            '\\' => code.push_str("\\\\"),
            other => code.push(other),
        }
    }
    code.push_str("\");\n");
}

/// Emits a `write_json` call for the expression `expr`.
fn push_ser(code: &mut String, expr: &str) {
    code.push_str("::serde::Serialize::write_json(");
    code.push_str(expr);
    code.push_str(", out);\n");
}

fn gen_fields_body(code: &mut String, fields: &Fields, access: &dyn Fn(&str) -> String) {
    match fields {
        Fields::Named(names) if names.iter().any(|f| f.skip_if.is_some()) => {
            // At least one field is conditionally skipped: track whether a
            // comma is due with a runtime flag. Types without skip
            // attributes keep the straight-line body below, so their JSON
            // byte stream is unchanged.
            push_lit(code, "{");
            code.push_str("let mut __virtuoso_first = true;\n");
            for f in names {
                let name = &f.name;
                if let Some(pred) = &f.skip_if {
                    code.push_str(&format!("if !{pred}(&{}) {{\n", access(name)));
                }
                code.push_str("if !__virtuoso_first { out.push(','); }\n");
                code.push_str("__virtuoso_first = false;\n");
                push_lit(code, &format!("\"{name}\":"));
                push_ser(code, &access(name));
                if f.skip_if.is_some() {
                    code.push_str("}\n");
                }
            }
            code.push_str("let _ = __virtuoso_first;\n");
            push_lit(code, "}");
        }
        Fields::Named(names) => {
            push_lit(code, "{");
            for (k, f) in names.iter().enumerate() {
                if k > 0 {
                    push_lit(code, ",");
                }
                push_lit(code, &format!("\"{}\":", f.name));
                push_ser(code, &access(&f.name));
            }
            push_lit(code, "}");
        }
        Fields::Tuple(1) => push_ser(code, &access("0")),
        Fields::Tuple(n) => {
            push_lit(code, "[");
            for k in 0..*n {
                if k > 0 {
                    push_lit(code, ",");
                }
                push_ser(code, &access(&k.to_string()));
            }
            push_lit(code, "]");
        }
        Fields::Unit => push_lit(code, "null"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let mut body = String::new();
    match &item.kind {
        ItemKind::Struct(fields) => {
            gen_fields_body(&mut body, fields, &|f| format!("&self.{f}"));
        }
        ItemKind::Enum(variants) => {
            body.push_str("match self {\n");
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        body.push_str(&format!("Self::{v} => {{\n"));
                        push_lit(&mut body, &format!("\"{v}\""));
                        body.push_str("}\n");
                    }
                    Fields::Named(names) => {
                        let binds: Vec<&str> = names.iter().map(|f| f.name.as_str()).collect();
                        body.push_str(&format!("Self::{v} {{ {} }} => {{\n", binds.join(", ")));
                        push_lit(&mut body, &format!("{{\"{v}\":"));
                        gen_fields_body(&mut body, fields, &|f| f.to_string());
                        push_lit(&mut body, "}");
                        body.push_str("}\n");
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        body.push_str(&format!("Self::{v}({}) => {{\n", binds.join(", ")));
                        push_lit(&mut body, &format!("{{\"{v}\":"));
                        gen_fields_body(&mut body, fields, &|f| format!("__f{f}"));
                        push_lit(&mut body, "}");
                        body.push_str("}\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn write_json(&self, out: &mut ::std::string::String) {{\n\
         {body}\
         }}\n\
         }}\n",
        name = item.name,
    )
}
