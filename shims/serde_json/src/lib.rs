//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Provides [`to_string`] / [`to_string_pretty`] over the shim
//! [`serde::Serialize`] trait, which writes compact JSON text directly.
//! Serialization in this workspace is write-only (reports dumped for human
//! inspection), so no parser is provided.

use std::fmt;

/// Serialization error. The shim serializer is infallible, so this is never
/// actually constructed; it exists to keep call sites source-compatible with
/// the real `serde_json` API.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serializes `value` to JSON. The shim does not pretty-print; output is
/// identical to [`to_string`].
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}
