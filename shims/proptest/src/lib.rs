//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of proptest that its property tests use:
//!
//! * the [`proptest!`] macro (including the `#![proptest_config(..)]` inner
//!   attribute form),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * range strategies (`0u64..100`, `-1.0f64..1.0`, …), [`arbitrary::any`],
//!   and [`collection::vec`],
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Inputs are drawn from a deterministic per-test RNG (seeded from the test
//! name), so failures reproduce across runs. There is no shrinking: a
//! failing case panics with the regular `assert!` message, which is adequate
//! for CI-style regression checking.

/// Test-runner configuration and the deterministic RNG driving input
/// generation.
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test body executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest defaults to 256; the shim uses a smaller
            // budget to keep `cargo test` fast while still exercising the
            // properties across a spread of inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 RNG; seeded from the test name so each test
    /// sees a stable, independent input stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG whose seed is derived (FNV-1a) from `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Input-generation strategies (the shim's stand-in for
/// `proptest::strategy`).
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values of an output type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value from `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),* $(,)?) => {
            $(impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            })*
        };
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),* $(,)?) => {
            $(impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            })*
        };
    }

    impl_range_strategy_float!(f32, f64);

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct AnyStrategy<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy returned by [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `any::<T>()` support for primitive types.
pub mod arbitrary {
    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            })*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The full-range strategy for `T` (e.g. `any::<u64>()`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Single-import prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced access to strategy constructors (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }` item
/// becomes a `#[test]` that runs its body for a configurable number of
/// randomly drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name (the shim does not shrink, so
/// a failure panics directly with the asserted condition).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
